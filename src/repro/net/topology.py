"""Port-numbered topologies and a library of generators.

A :class:`Topology` is an undirected multigraph whose nodes are integers
``0..n-1``.  Every edge endpoint is bound to a concrete *switch port*: ports
at each node are numbered ``1..degree`` in edge-insertion order.  SmartSouth's
DFS order is entirely determined by this numbering, so it is deterministic
and reproducible.

Self-loops are rejected; parallel edges are allowed (they occupy distinct
ports, and the traversal handles them like any other edge).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.core.determinism import seeded_rng


class TopologyError(Exception):
    """Raised for malformed topology operations."""


@dataclass(frozen=True)
class Endpoint:
    """One side of a link: (node, port)."""

    node: int
    port: int


@dataclass(frozen=True)
class Edge:
    """An undirected edge with bound ports on both sides."""

    edge_id: int
    a: Endpoint
    b: Endpoint

    def other(self, node: int) -> Endpoint:
        """The endpoint opposite to *node*."""
        if node == self.a.node:
            return self.b
        if node == self.b.node:
            return self.a
        raise TopologyError(f"node {node} not on edge {self.edge_id}")

    def endpoint(self, node: int) -> Endpoint:
        """The endpoint at *node*."""
        if node == self.a.node:
            return self.a
        if node == self.b.node:
            return self.b
        raise TopologyError(f"node {node} not on edge {self.edge_id}")


class Topology:
    """An undirected, port-numbered multigraph."""

    def __init__(self, num_nodes: int = 0, name: str = "") -> None:
        if num_nodes < 0:
            raise TopologyError("negative node count")
        self.name = name
        self._num_nodes = num_nodes
        self._edges: list[Edge] = []
        # _ports[u][p] -> Edge  (p is 1-based)
        self._ports: list[dict[int, Edge]] = [dict() for _ in range(num_nodes)]

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #

    def add_node(self) -> int:
        """Append a new node and return its id."""
        self._ports.append({})
        self._num_nodes += 1
        return self._num_nodes - 1

    def add_link(self, u: int, v: int) -> Edge:
        """Connect *u* and *v*, assigning the next free port on each side."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise TopologyError(f"self-loop at node {u} not supported")
        pu = self.degree(u) + 1
        pv = self.degree(v) + 1
        edge = Edge(len(self._edges), Endpoint(u, pu), Endpoint(v, pv))
        self._edges.append(edge)
        self._ports[u][pu] = edge
        self._ports[v][pv] = edge
        return edge

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise TopologyError(f"unknown node {node}")

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def nodes(self) -> range:
        return range(self._num_nodes)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def edge(self, edge_id: int) -> Edge:
        return self._edges[edge_id]

    def degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._ports[node])

    def max_degree(self) -> int:
        if self._num_nodes == 0:
            return 0
        return max(self.degree(u) for u in self.nodes())

    def port_edge(self, node: int, port: int) -> Edge | None:
        """The edge attached to (node, port), or None if the port is unused."""
        self._check_node(node)
        return self._ports[node].get(port)

    def neighbor(self, node: int, port: int) -> Endpoint | None:
        """The (node, port) endpoint reached by leaving *node* via *port*."""
        edge = self.port_edge(node, port)
        if edge is None:
            return None
        return edge.other(node)

    def ports(self, node: int) -> Iterator[tuple[int, Edge]]:
        """Iterate (port, edge) pairs at *node* in ascending port order."""
        self._check_node(node)
        return iter(sorted(self._ports[node].items()))

    def neighbors(self, node: int) -> list[int]:
        """Distinct neighbor node ids of *node*."""
        return sorted({edge.other(node).node for edge in self._ports[node].values()})

    def find_edge(self, u: int, v: int) -> Edge | None:
        """Some edge between *u* and *v* (the first inserted), or None."""
        for edge in self._ports[u].values():
            if edge.other(u).node == v:
                return edge
        return None

    def adjacency(self) -> dict[int, list[int]]:
        """Plain adjacency lists (distinct neighbors)."""
        return {u: self.neighbors(u) for u in self.nodes()}

    def edge_set(self) -> set[frozenset[int]]:
        """The set of node pairs with at least one edge (for comparisons)."""
        return {frozenset((e.a.node, e.b.node)) for e in self._edges}

    def port_pair_set(self) -> set[frozenset[tuple[int, int]]]:
        """Edges as unordered {(node, port), (node, port)} pairs.

        This is the exact object the snapshot service must recover.
        """
        return {
            frozenset(((e.a.node, e.a.port), (e.b.node, e.b.port)))
            for e in self._edges
        }

    def is_connected(self) -> bool:
        """True if the graph is connected (vacuously true when empty)."""
        if self._num_nodes == 0:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            u = frontier.pop()
            for v in self.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == self._num_nodes

    def connected_component(self, start: int) -> set[int]:
        """The set of nodes reachable from *start*."""
        self._check_node(start)
        seen = {start}
        frontier = [start]
        while frontier:
            u = frontier.pop()
            for v in self.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or "topology"
        return f"Topology({label}, n={self.num_nodes}, m={self.num_edges})"


# ---------------------------------------------------------------------- #
# Generators                                                             #
# ---------------------------------------------------------------------- #


def line(n: int) -> Topology:
    """A path of *n* nodes."""
    topo = Topology(n, name=f"line-{n}")
    for u in range(n - 1):
        topo.add_link(u, u + 1)
    return topo


def ring(n: int) -> Topology:
    """A cycle of *n* nodes (n >= 3)."""
    if n < 3:
        raise TopologyError("ring needs at least 3 nodes")
    topo = Topology(n, name=f"ring-{n}")
    for u in range(n):
        topo.add_link(u, (u + 1) % n)
    return topo


def star(n: int) -> Topology:
    """A star: node 0 is the hub, nodes 1..n-1 are leaves."""
    if n < 2:
        raise TopologyError("star needs at least 2 nodes")
    topo = Topology(n, name=f"star-{n}")
    for u in range(1, n):
        topo.add_link(0, u)
    return topo


def complete(n: int) -> Topology:
    """The complete graph K_n."""
    topo = Topology(n, name=f"complete-{n}")
    for u in range(n):
        for v in range(u + 1, n):
            topo.add_link(u, v)
    return topo


def binary_tree(depth: int) -> Topology:
    """A complete binary tree of the given *depth* (depth 0 = single node)."""
    n = (1 << (depth + 1)) - 1
    topo = Topology(n, name=f"btree-{depth}")
    for u in range(1, n):
        topo.add_link((u - 1) // 2, u)
    return topo


def grid(rows: int, cols: int) -> Topology:
    """A rows x cols mesh."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid needs positive dimensions")
    topo = Topology(rows * cols, name=f"grid-{rows}x{cols}")

    def node(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                topo.add_link(node(r, c), node(r, c + 1))
            if r + 1 < rows:
                topo.add_link(node(r, c), node(r + 1, c))
    return topo


def torus(rows: int, cols: int) -> Topology:
    """A rows x cols torus (wrap-around mesh); needs rows, cols >= 3."""
    if rows < 3 or cols < 3:
        raise TopologyError("torus needs dimensions >= 3")
    topo = Topology(rows * cols, name=f"torus-{rows}x{cols}")

    def node(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            topo.add_link(node(r, c), node(r, (c + 1) % cols))
            topo.add_link(node(r, c), node((r + 1) % rows, c))
    return topo


def erdos_renyi(n: int, p: float, seed: int = 0, connect: bool = True) -> Topology:
    """A G(n, p) random graph.

    With ``connect=True`` (the default) a random spanning tree is added first
    so that the result is always connected — SmartSouth's traversal semantics
    are defined per connected component, and most experiments want a single
    component.
    """
    rng = seeded_rng(seed)
    topo = Topology(n, name=f"gnp-{n}-{p}-s{seed}")
    present: set[frozenset[int]] = set()
    if connect and n > 1:
        order = list(range(n))
        rng.shuffle(order)
        for i in range(1, n):
            u = order[i]
            v = order[rng.randrange(i)]
            topo.add_link(u, v)
            present.add(frozenset((u, v)))
    for u in range(n):
        for v in range(u + 1, n):
            if frozenset((u, v)) in present:
                continue
            if rng.random() < p:
                topo.add_link(u, v)
    return topo


def barabasi_albert(n: int, m: int, seed: int = 0) -> Topology:
    """A preferential-attachment graph: each new node attaches to *m* others."""
    if m < 1 or n <= m:
        raise TopologyError("barabasi_albert needs n > m >= 1")
    rng = seeded_rng(seed)
    topo = Topology(n, name=f"ba-{n}-{m}-s{seed}")
    # Seed clique on the first m+1 nodes keeps early attachment well-defined.
    targets: list[int] = []
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            topo.add_link(u, v)
            targets.extend((u, v))
    for u in range(m + 1, n):
        chosen: set[int] = set()
        while len(chosen) < m:
            chosen.add(rng.choice(targets))
        for v in sorted(chosen):
            topo.add_link(u, v)
            targets.extend((u, v))
    return topo


def waxman(
    n: int,
    alpha: float = 0.6,
    beta: float = 0.25,
    seed: int = 0,
    connect: bool = True,
) -> Topology:
    """A Waxman random geometric graph on the unit square."""
    rng = seeded_rng(seed)
    topo = Topology(n, name=f"waxman-{n}-s{seed}")
    coords = [(rng.random(), rng.random()) for _ in range(n)]
    scale = math.sqrt(2.0)
    present: set[frozenset[int]] = set()
    for u in range(n):
        for v in range(u + 1, n):
            dist = math.dist(coords[u], coords[v])
            if rng.random() < alpha * math.exp(-dist / (beta * scale)):
                topo.add_link(u, v)
                present.add(frozenset((u, v)))
    if connect and n > 1:
        # Stitch components along nearest pairs, deterministically.
        comp = _components(topo)
        while len(comp) > 1:
            a, b = comp[0], comp[1]
            best = min(
                ((u, v) for u in a for v in b),
                key=lambda pair: math.dist(coords[pair[0]], coords[pair[1]]),
            )
            topo.add_link(*best)
            comp = _components(topo)
    return topo


def _components(topo: Topology) -> list[list[int]]:
    remaining = set(topo.nodes())
    comps: list[list[int]] = []
    while remaining:
        start = min(remaining)
        comp = topo.connected_component(start)
        comps.append(sorted(comp))
        remaining -= comp
    return comps


def random_regular(n: int, degree: int, seed: int = 0) -> Topology:
    """A random *degree*-regular graph (the "jellyfish" datacenter shape).

    Uses the pairing model with restarts; requires ``n * degree`` even and
    ``degree < n``.  Always returns a simple connected graph.
    """
    if degree < 2 or degree >= n:
        raise TopologyError("random_regular needs 2 <= degree < n")
    if (n * degree) % 2:
        raise TopologyError("n * degree must be even")
    rng = seeded_rng(seed)
    for _attempt in range(1000):
        stubs = [node for node in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        pairs = list(zip(stubs[::2], stubs[1::2]))
        seen: set[frozenset[int]] = set()
        valid = True
        for u, v in pairs:
            key = frozenset((u, v))
            if u == v or key in seen:
                valid = False
                break
            seen.add(key)
        if not valid:
            continue
        topo = Topology(n, name=f"regular-{n}-{degree}-s{seed}")
        for u, v in pairs:
            topo.add_link(u, v)
        if topo.is_connected():
            return topo
    raise TopologyError(
        f"could not sample a connected simple {degree}-regular graph "
        f"on {n} nodes"
    )


def fat_tree(k: int) -> Topology:
    """A k-ary fat-tree (k even): k²/4 core, k²/2 agg, k²/2 edge switches.

    Hosts are omitted — SmartSouth runs on the switch fabric.
    """
    if k < 2 or k % 2:
        raise TopologyError("fat_tree needs an even k >= 2")
    half = k // 2
    num_core = half * half
    num_agg = k * half
    num_edge = k * half
    topo = Topology(num_core + num_agg + num_edge, name=f"fattree-{k}")

    def core(i: int) -> int:
        return i

    def agg(pod: int, i: int) -> int:
        return num_core + pod * half + i

    def edge(pod: int, i: int) -> int:
        return num_core + num_agg + pod * half + i

    for pod in range(k):
        for a in range(half):
            for e in range(half):
                topo.add_link(agg(pod, a), edge(pod, e))
            for c in range(half):
                topo.add_link(agg(pod, a), core(a * half + c))
    return topo


#: Abilene (Internet2) backbone, a standard 11-node research WAN topology.
_ABILENE_LINKS = [
    (0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 5), (4, 5), (4, 6),
    (5, 7), (6, 8), (7, 9), (8, 9), (8, 10), (9, 10), (3, 10),
]


def abilene() -> Topology:
    """The Abilene backbone (11 nodes, 15 links)."""
    topo = Topology(11, name="abilene")
    for u, v in _ABILENE_LINKS:
        topo.add_link(u, v)
    return topo


#: Name -> constructor map used by the CLI and benchmarks.
generators: dict[str, Callable[..., Topology]] = {
    "line": line,
    "ring": ring,
    "star": star,
    "complete": complete,
    "binary_tree": binary_tree,
    "grid": grid,
    "torus": torus,
    "erdos_renyi": erdos_renyi,
    "barabasi_albert": barabasi_albert,
    "waxman": waxman,
    "random_regular": random_regular,
    "fat_tree": fat_tree,
    "abilene": abilene,
}


def from_edge_list(n: int, links: Iterable[tuple[int, int]], name: str = "") -> Topology:
    """Build a topology from an explicit edge list."""
    topo = Topology(n, name=name or "custom")
    for u, v in links:
        topo.add_link(u, v)
    return topo
