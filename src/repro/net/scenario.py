"""Seeded scenario runner: one chaos scenario → one observable dict.

One *scenario* is a fully seeded run: a service, a chaos topology, a fault
profile, and a seed.  :func:`run_scenario` executes it on one switch engine
(interpreted or fast path) and returns every observable as one
JSON-serializable dict — the full event trace, per-trigger outcomes, and a
complete counters snapshot (per-entry, per-group, per-bucket, round-robin
cursors).  Two engines (or two *processes*) are *byte-identical* on a
scenario iff their observable dicts (and hence their JSON encodings) are
equal.

Three consumers share this module:

* the fast-path differential suite (``tests/test_fastpath_differential.py``)
  compares both engines on a scenario matrix;
* the golden-trace corpus (``tests/test_golden_traces.py``) pins the
  fast-path observables of :data:`GOLDEN_SCENARIOS` against history;
* the double-run determinism gate
  (:mod:`repro.analysis.static.doublerun`) hashes the same observables in
  two subprocesses under different ``PYTHONHASHSEED`` values and demands
  identical digests.

Determinism notes:

* Packet ids are global allocation order, so every run starts with
  :func:`~repro.openflow.packet.reset_packet_ids` — identical behaviour
  then yields identical ids, and they are compared, not masked.
* Fault plans draw from a seed-derived RNG (the chaos harness's
  ``_plan_faults``); the same seed produces the same plan everywhere.
* Link loss/jitter draws come from the network's own seeded RNG *during*
  the run, so the draw sequence — and everything after it — stays identical
  only while the run emits exactly the same packets in the same order.
  A divergence amplifies instead of averaging out, which is the point.
"""

from __future__ import annotations

from repro.core.determinism import Rng, seeded_rng
from repro.core.engine import make_engine
from repro.core.fields import FIELD_GID, FIELD_REPEAT
from repro.core.services.anycast import AnycastService, PriocastService
from repro.core.services.blackhole import (
    REPEAT_PROBE,
    REPEAT_VERIFY,
    BlackholeService,
)
from repro.core.services.snapshot import SnapshotService
from repro.net.chaos import PROFILES, TOPOLOGIES, _plan_faults
from repro.net.simulator import Network
from repro.openflow.packet import reset_packet_ids

#: The services the differential matrix covers (the paper's case studies
#: plus priocast, which exercises SELECT groups hardest).
SERVICES = ("snapshot", "anycast", "priocast", "blackhole")

#: Twelve pinned scenarios: every service × both chaos topologies, profiles
#: and seeds varied so lossy, partition and blackhole faults all appear.
#: The golden-trace corpus and the double-run determinism gate both walk
#: this list.
GOLDEN_SCENARIOS = (
    ("snapshot", "torus3x3", "lossy", 11),
    ("snapshot", "complete5", "partition", 42),
    ("snapshot", "torus3x3", "blackhole", 7),
    ("anycast", "torus3x3", "partition", 11),
    ("anycast", "complete5", "lossy", 42),
    ("anycast", "complete5", "blackhole", 3),
    ("priocast", "torus3x3", "blackhole", 11),
    ("priocast", "complete5", "lossy", 7),
    ("priocast", "torus3x3", "partition", 42),
    ("blackhole", "torus3x3", "lossy", 42),
    ("blackhole", "complete5", "blackhole", 11),
    ("blackhole", "complete5", "partition", 7),
)

#: High-fan-out scenarios: a "-storm" service injects 8–16 simultaneous
#: triggers (roots drawn with replacement, so several land on one switch in
#: the same time bucket) and drains them in one event-loop run.  These are
#: the corpus entries that actually exercise batched dispatch — the batched
#: engine must reproduce them byte for byte, interleavings included.
FANOUT_SCENARIOS = (
    ("snapshot-storm", "torus3x3", "lossy", 11),
    ("snapshot-storm", "complete5", "blackhole", 42),
    ("anycast-storm", "complete5", "partition", 7),
    ("priocast-storm", "torus3x3", "lossy", 42),
)

#: Mixed into the scenario seed for fault planning (the chaos harness's
#: constant, so fault plans look like chaos campaign plans).
_PLAN_SALT = 0x9E3779B9


def _build_run(service_name: str, topology, root: int, rng: Rng):
    """The service instance and its trigger list for one scenario.

    Returns ``(service, triggers)`` where each trigger is
    ``(fields, from_controller)``.
    """
    others = [n for n in topology.nodes() if n != root]
    if service_name == "snapshot":
        return SnapshotService(), [({}, True)]
    if service_name == "anycast":
        members = set(rng.sample(others, min(2, len(others))))
        return AnycastService({2: members}), [({FIELD_GID: 2}, False)]
    if service_name == "priocast":
        chosen = rng.sample(others, min(3, len(others)))
        priorities = {2: {node: rng.randint(1, 255) for node in chosen}}
        return PriocastService(priorities), [({FIELD_GID: 2}, False)]
    if service_name == "blackhole":
        # Probe then verify: the two-phase smart-counter detection, which
        # exercises SELECT round-robin cursors across triggers.
        return BlackholeService(), [
            ({FIELD_REPEAT: REPEAT_PROBE}, True),
            ({FIELD_REPEAT: REPEAT_VERIFY}, True),
        ]
    raise ValueError(f"unknown scenario service {service_name!r}")


def _build_storm(service_name: str, topology, root: int, rng: Rng):
    """A "-storm" scenario: the base service, triggered many times at once.

    Returns ``(service, triggers)`` where each trigger is
    ``(root, fields, from_controller)``.  The base service's configuration
    draws happen first (identical to the plain scenario), then 8–16 trigger
    roots are drawn with replacement over all nodes.
    """
    base = service_name[: -len("-storm")]
    if base not in ("snapshot", "anycast", "priocast"):
        raise ValueError(f"unknown storm service {service_name!r}")
    service, proto = _build_run(base, topology, root, rng)
    count = 8 + rng.randrange(9)
    triggers = []
    for _ in range(count):
        trigger_root = rng.randrange(topology.num_nodes)
        for fields, from_controller in proto:
            triggers.append((trigger_root, fields, from_controller))
    return service, triggers


def _packet_view(packet) -> dict:
    return {
        "packet_id": packet.packet_id,
        "hops": packet.hops,
        "fields": sorted(packet.fields.items()),
        "stack": [list(record) for record in packet.stack],
    }


def _result_view(result) -> dict:
    return {
        "root": result.root,
        "reports": [
            [node, _packet_view(packet)] for node, packet in result.reports
        ],
        "deliveries": [
            [node, _packet_view(packet)] for node, packet in result.deliveries
        ],
        "in_band_messages": result.in_band_messages,
        "out_band_messages": result.out_band_messages,
    }


def counters_snapshot(switch) -> dict:
    """Every OpenFlow counter a switch exposes, in deterministic order."""
    entries = [
        [
            table_id,
            entry.seq,
            entry.priority,
            entry.cookie,
            entry.packet_count,
        ]
        for table_id, entry in switch.iter_entries()
    ]
    groups = [
        [
            group.group_id,
            group.group_type.value,
            group.packet_count,
            group.rr_next,
            [bucket.packet_count for bucket in group.buckets],
        ]
        for group in switch.groups.groups()
    ]
    return {
        "packets_processed": switch.packets_processed,
        "table_misses": switch.table_misses,
        "entries": entries,
        "groups": groups,
    }


def run_scenario(
    service_name: str,
    topology_name: str,
    profile_name: str,
    seed: int,
    fast_path: bool,
    batch: bool = False,
) -> dict:
    """Run one seeded chaos scenario on one engine; return its observables.

    ``batch=True`` runs the same scenario through the batched drain mode
    (grouped same-time arrivals, batched fast-path dispatch); the
    observable dict is required to be byte-identical either way.
    """
    reset_packet_ids()
    storm = service_name.endswith("-storm")
    topology = TOPOLOGIES[topology_name]()
    network = Network(topology, seed=seed, fast_path=fast_path, batch=batch)
    plan_rng = seeded_rng(seed ^ _PLAN_SALT)
    root = plan_rng.randrange(topology.num_nodes)
    faults = _plan_faults(
        network, PROFILES[profile_name], service_name, root, plan_rng, None
    )
    if storm:
        service, triggers = _build_storm(service_name, topology, root, plan_rng)
    else:
        service, triggers = _build_run(service_name, topology, root, plan_rng)
    engine = make_engine(
        network, service, "compiled", fast_path=fast_path, batch=batch
    )

    results = []
    error = None
    try:
        if storm:
            # All triggers enter the event queue before it drains once:
            # simultaneous same-node arrivals form real batches.
            trace = network.trace
            mark_in = trace.in_band_messages
            mark_out = trace.out_band_messages
            for trigger_root, fields, from_controller in triggers:
                engine.trigger(
                    trigger_root,
                    fields=dict(fields),
                    from_controller=from_controller,
                    run=False,
                )
            network.run()
            results.append(
                {
                    "roots": [t[0] for t in triggers],
                    "reports": [
                        [node, _packet_view(packet)]
                        for node, packet in engine.reports
                    ],
                    "deliveries": [
                        [node, _packet_view(packet)]
                        for node, packet in engine.deliveries
                    ],
                    "in_band_messages": trace.in_band_messages - mark_in,
                    "out_band_messages": trace.out_band_messages - mark_out,
                }
            )
        else:
            for fields, from_controller in triggers:
                result = engine.trigger(
                    root, fields=dict(fields), from_controller=from_controller
                )
                results.append(_result_view(result))
    except Exception as exc:  # noqa: BLE001 - errors are observables too
        error = [type(exc).__name__, str(exc)]

    assert all(
        switch.fast_path_enabled == fast_path
        for switch in engine.switches.values()
    ), "engine flag did not reach the switches"
    assert engine.batch == batch and network.batch == batch, (
        "batch flag did not reach the network"
    )

    return {
        "scenario": {
            "service": service_name,
            "topology": topology_name,
            "profile": profile_name,
            "seed": seed,
            "root": root,
        },
        "faults": faults,
        "results": results,
        "error": error,
        "trace": network.trace.to_jsonl(),
        "trace_summary": sorted(network.trace.summary().items()),
        "counters": {
            str(node): counters_snapshot(switch)
            for node, switch in sorted(engine.switches.items())
        },
    }
