"""Execution traces and message accounting.

Every observable event of a run is recorded: link crossings (the paper's
*in-band messages*), controller interactions (*out-of-band messages*), local
deliveries, and drops.  The Table 2 reproduction reads its numbers straight
from these traces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator


class EventKind(enum.Enum):
    """What happened."""

    #: A packet crossed a link (one in-band message).
    HOP = "hop"
    #: A packet was silently dropped on a link (blackhole / loss).
    DROP = "drop"
    #: A packet was emitted to a dead port (no link, or link down).
    DEAD_PORT = "dead_port"
    #: A switch pipeline produced no output (table miss / no live FF bucket).
    PIPELINE_DROP = "pipeline_drop"
    #: A packet was delivered to the switch itself (anycast "self" port).
    DELIVERED = "delivered"
    #: A packet was sent to the controller (out-of-band packet-in).
    PACKET_IN = "packet_in"
    #: The controller injected a packet at a switch (out-of-band packet-out).
    PACKET_OUT = "packet_out"


@dataclass(frozen=True)
class TraceEvent:
    """One trace record."""

    time: float
    kind: EventKind
    node: int
    packet_id: int
    #: HOP/DROP: (from_node, from_port, to_node, to_port); otherwise ().
    detail: tuple[Any, ...] = ()


class Trace:
    """An append-only event log with message-accounting helpers."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self._events.append(event)

    def events(self, kind: EventKind | None = None) -> Iterator[TraceEvent]:
        if kind is None:
            return iter(self._events)
        return (e for e in self._events if e.kind is kind)

    def count(self, kind: EventKind) -> int:
        return sum(1 for _ in self.events(kind))

    # ------------------------------------------------------------------ #
    # The paper's accounting view                                        #
    # ------------------------------------------------------------------ #

    @property
    def in_band_messages(self) -> int:
        """Messages that crossed a data-plane link (attempted crossings count:
        a packet swallowed by a blackhole was still *sent*)."""
        return self.count(EventKind.HOP) + self.count(EventKind.DROP)

    @property
    def out_band_messages(self) -> int:
        """Controller interactions: packet-ins plus packet-outs."""
        return self.count(EventKind.PACKET_IN) + self.count(EventKind.PACKET_OUT)

    @property
    def deliveries(self) -> int:
        return self.count(EventKind.DELIVERED)

    def hops_of(self, packet_ids: set[int]) -> int:
        """In-band messages restricted to the given packet ids."""
        return sum(
            1
            for e in self._events
            if e.kind in (EventKind.HOP, EventKind.DROP)
            and e.packet_id in packet_ids
        )

    def hop_sequence(self) -> list[tuple[int, int, int, int]]:
        """All link crossings as (from_node, from_port, to_node, to_port).

        This is the sequence the differential tests compare between the
        interpreted and compiled engines.
        """
        return [e.detail for e in self.events(EventKind.HOP)]

    def last_time(self) -> float:
        return self._events[-1].time if self._events else 0.0

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def summary(self) -> dict[str, int]:
        """Event counts by kind (plus the paper's two aggregate numbers)."""
        out: dict[str, int] = {kind.value: self.count(kind) for kind in EventKind}
        out["in_band"] = self.in_band_messages
        out["out_band"] = self.out_band_messages
        return out

    # ------------------------------------------------------------------ #
    # Export (debugging / offline analysis)                              #
    # ------------------------------------------------------------------ #

    def to_jsonl(self) -> str:
        """One JSON object per event, in order — loadable by any tooling."""
        import json

        lines = []
        for event in self._events:
            lines.append(
                json.dumps(
                    {
                        "t": event.time,
                        "kind": event.kind.value,
                        "node": event.node,
                        "packet": event.packet_id,
                        "detail": list(event.detail),
                    },
                    separators=(",", ":"),
                )
            )
        return "\n".join(lines)

    def format_hops(self, limit: int | None = None) -> str:
        """A human-readable hop log: ``t=3.0  2:p1 -> 5:p2``."""
        rows = []
        for event in self.events(EventKind.HOP):
            u, pu, v, pv = event.detail
            rows.append(f"t={event.time:<6g} {u}:p{pu} -> {v}:p{pv}")
            if limit is not None and len(rows) >= limit:
                rows.append("...")
                break
        return "\n".join(rows)
