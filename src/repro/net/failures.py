"""Failure-scenario generators for experiments.

The robustness experiments all need the same few ingredients: random link
failures, isolating a node, regional outages, and management-plane
degradation.  These helpers centralize them so tests, benchmarks and user
scripts build scenarios the same way (and stay seed-reproducible).
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Iterable

from repro.core.determinism import seeded_rng
from repro.net.simulator import Network
from repro.net.topology import Topology

#: Largest C(E, count) the keep-connected fallback will enumerate.
_ENUMERATION_LIMIT = 250_000


def fail_random_links(
    network: Network,
    count: int,
    seed: int | None = None,
    keep_connected: bool = False,
    attempts: int = 200,
) -> list[int]:
    """Visibly fail *count* distinct random links; returns their edge ids.

    With ``keep_connected=True``, candidate sets that would disconnect the
    live graph are rejected; after *attempts* rejections on a small
    topology, the valid sets are enumerated exhaustively and one is sampled
    uniformly — so the call succeeds whenever a valid set exists (and the
    RuntimeError it raises otherwise is a proof that none does).

    With ``seed=None`` (the default) draws come from ``network.rng``, the
    per-network seeded stream shared with lossy-link drops and the chaos
    harness; pass an explicit seed to get a detached, call-local stream.
    """
    topology = network.topology
    if count > topology.num_edges:
        raise ValueError(
            f"cannot fail {count} of {topology.num_edges} links"
        )
    rng = network.rng if seed is None else seeded_rng(seed)
    for _attempt in range(attempts):
        chosen = rng.sample(range(topology.num_edges), count)
        if not keep_connected or _connected_without(topology, chosen):
            for edge_id in chosen:
                network.links[edge_id].up = False
            return chosen
    # Rejection sampling failed: valid sets are rare or nonexistent.  On
    # small topologies, decide which by enumeration.
    if math.comb(topology.num_edges, count) > _ENUMERATION_LIMIT:
        raise RuntimeError(
            f"no {count}-link failure set keeping {topology.name} connected "
            f"found in {attempts} attempts (topology too large to enumerate)"
        )
    valid = [
        list(combo)
        for combo in combinations(range(topology.num_edges), count)
        if _connected_without(topology, combo)
    ]
    if not valid:
        raise RuntimeError(
            f"no {count}-link failure set keeps {topology.name} connected"
        )
    chosen = rng.choice(valid)
    for edge_id in chosen:
        network.links[edge_id].up = False
    return chosen


def _connected_without(topology: Topology, dead: Iterable[int]) -> bool:
    dead_set = set(dead)
    if topology.num_nodes == 0:
        return True
    adjacency: dict[int, set[int]] = {u: set() for u in topology.nodes()}
    for edge in topology.edges():
        if edge.edge_id in dead_set:
            continue
        adjacency[edge.a.node].add(edge.b.node)
        adjacency[edge.b.node].add(edge.a.node)
    seen = {0}
    frontier = [0]
    while frontier:
        u = frontier.pop()
        for v in adjacency[u]:
            if v not in seen:
                seen.add(v)
                frontier.append(v)
    return len(seen) == topology.num_nodes


def fail_edge_after_steps(network: Network, edge_id: int, steps: int) -> None:
    """Kill link *edge_id* once *steps* packet arrivals have been processed.

    This is the mid-traversal failure primitive: unlike wall-clock
    scheduling it is deterministic under any link-delay assignment, which
    is what lets a model-checker counterexample (whose transitions are
    packet steps, not times) replay exactly in the simulator.  ``steps=0``
    fails the link before any packet moves (a pre-traversal failure).
    """
    if not 0 <= edge_id < len(network.links):
        raise ValueError(f"no edge {edge_id} in {network.topology.name}")

    def _kill() -> None:
        # repro: allow[SHARD001] deferred write of the injection seam above
        network.links[edge_id].up = False

    network.at_packet_step(steps, _kill)


def fail_link_after_steps(network: Network, u: int, v: int, steps: int) -> None:
    """Kill the (first) link between *u* and *v* after *steps* packet steps."""
    edge = network.topology.find_edge(u, v)
    if edge is None:
        raise ValueError(f"no link between {u} and {v}")
    fail_edge_after_steps(network, edge.edge_id, steps)


def isolate_node(network: Network, node: int) -> list[int]:
    """Fail every link of *node* (maintenance / crash); returns edge ids."""
    failed = []
    for port in range(1, network.topology.degree(node) + 1):
        edge = network.topology.port_edge(node, port)
        if edge is not None and network.links[edge.edge_id].up:
            network.links[edge.edge_id].up = False
            failed.append(edge.edge_id)
    return failed


def restore_node(network: Network, node: int) -> list[int]:
    """Bring every downed link of *node* back up; returns their edge ids.

    The inverse of :meth:`isolate_node`, for transient node outages: a
    chaos profile schedules ``isolate_node`` at one packet step and this at
    a later simulated time.  Restores *all* of the node's down links, so an
    isolate/restore pair leaves the node at least as connected as before
    (links failed independently in between come back too — matching the
    maintenance-window semantics, where the reconnecting box renegotiates
    every port).
    """
    restored = []
    for port in range(1, network.topology.degree(node) + 1):
        edge = network.topology.port_edge(node, port)
        if edge is not None and not network.links[edge.edge_id].up:
            network.links[edge.edge_id].up = True
            restored.append(edge.edge_id)
    return restored


def fail_region(network: Network, nodes: Iterable[int]) -> list[int]:
    """Fail every link with *both* endpoints in the region (a correlated
    outage: the region's internal fabric goes dark, its uplinks survive)."""
    region = set(nodes)
    failed = []
    for link in network.links:
        edge = link.edge
        if edge.a.node in region and edge.b.node in region and link.up:
            link.up = False
            failed.append(edge.edge_id)
    return failed


def restore_region(network: Network, nodes: Iterable[int]) -> list[int]:
    """Bring every downed intra-region link back up; returns their edge ids.

    The inverse of :meth:`fail_region`: the region's internal fabric comes
    back as one correlated event.  Only links with *both* endpoints in the
    region are touched, mirroring what :meth:`fail_region` failed.
    """
    region = set(nodes)
    restored = []
    for link in network.links:
        edge = link.edge
        if edge.a.node in region and edge.b.node in region and not link.up:
            link.up = True
            restored.append(edge.edge_id)
    return restored


def management_outage(
    channel, fraction: float, seed: int | None = None
) -> list[int]:
    """Disconnect a random *fraction* of switches from the controller.

    With ``seed=None`` the choice comes from the network's shared seeded
    RNG (``channel.network.rng``); an explicit seed detaches the stream.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    topology = channel.network.topology
    rng = channel.network.rng if seed is None else seeded_rng(seed)
    count = int(round(fraction * topology.num_nodes))
    chosen = rng.sample(list(topology.nodes()), count)
    for node in chosen:
        channel.disconnect(node)
    return chosen


def live_component(network: Network, root: int) -> set[int]:
    """Nodes reachable from *root* over up links (experiment oracle)."""
    adjacency: dict[int, set[int]] = {u: set() for u in network.topology.nodes()}
    for link in network.links:
        if link.up:
            adjacency[link.edge.a.node].add(link.edge.b.node)
            adjacency[link.edge.b.node].add(link.edge.a.node)
    seen = {root}
    frontier = [root]
    while frontier:
        u = frontier.pop()
        for v in adjacency[u]:
            if v not in seen:
                seen.add(v)
                frontier.append(v)
    return seen
