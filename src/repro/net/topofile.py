"""Loading and saving topologies as plain edge-list files.

Experiments often want real-world graphs (e.g. the Internet Topology Zoo)
rather than generated ones.  The format is deliberately minimal and
diff-friendly::

    # smartsouth-topology <name>
    nodes <n>
    <u> <v>
    <u> <v>
    ...

Edges are listed in insertion order, which — together with the 1-based
port-assignment rule — makes a round-trip reproduce the exact same port
numbering, and therefore the exact same DFS order.
"""

from __future__ import annotations

import pathlib

from repro.net.topology import Topology, TopologyError

_MAGIC = "# smartsouth-topology"


def dumps(topology: Topology) -> str:
    """Serialize *topology* to the edge-list format."""
    lines = [f"{_MAGIC} {topology.name or 'unnamed'}"]
    lines.append(f"nodes {topology.num_nodes}")
    for edge in topology.edges():
        lines.append(f"{edge.a.node} {edge.b.node}")
    return "\n".join(lines) + "\n"


def loads(text: str) -> Topology:
    """Parse the edge-list format back into a :class:`Topology`."""
    lines = [line.strip() for line in text.splitlines()]
    lines = [line for line in lines if line and not line.startswith("#") or
             line.startswith(_MAGIC)]
    if not lines or not lines[0].startswith(_MAGIC):
        raise TopologyError("not a smartsouth topology file (missing header)")
    name = lines[0][len(_MAGIC):].strip() or "unnamed"
    if len(lines) < 2 or not lines[1].startswith("nodes "):
        raise TopologyError("missing 'nodes <n>' line")
    try:
        num_nodes = int(lines[1].split()[1])
    except (IndexError, ValueError) as exc:
        raise TopologyError(f"bad node count line {lines[1]!r}") from exc
    topology = Topology(num_nodes, name=name)
    for line in lines[2:]:
        parts = line.split()
        if len(parts) != 2:
            raise TopologyError(f"bad edge line {line!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise TopologyError(f"bad edge line {line!r}") from exc
        topology.add_link(u, v)
    return topology


def save(topology: Topology, path: str | pathlib.Path) -> None:
    """Write *topology* to *path*."""
    pathlib.Path(path).write_text(dumps(topology))


def load(path: str | pathlib.Path) -> Topology:
    """Read a topology from *path*."""
    return loads(pathlib.Path(path).read_text())
