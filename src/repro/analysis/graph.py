"""Standalone graph algorithms used as oracles and by the controller side.

These are deliberately independent of the SmartSouth data-plane code: the
tests cross-check the in-band services against them (and against networkx,
where available), so they must not share logic with the thing under test.
"""

from __future__ import annotations

from repro.net.topology import Topology


def connected_components(topology: Topology, live_only: bool = False) -> list[set[int]]:
    """Connected components (optionally ignore edges marked down via *live*)."""
    remaining = set(topology.nodes())
    components: list[set[int]] = []
    while remaining:
        start = min(remaining)
        component = topology.connected_component(start)
        components.append(component)
        remaining -= component
    return components


def articulation_points(
    adjacency: dict[int, list[int]] | Topology,
) -> set[int]:
    """Articulation points via iterative Tarjan low-link.

    Accepts either an adjacency mapping or a :class:`Topology`.
    """
    if isinstance(adjacency, Topology):
        adjacency = adjacency.adjacency()
    visited: set[int] = set()
    disc: dict[int, int] = {}
    low: dict[int, int] = {}
    parent: dict[int, int | None] = {}
    result: set[int] = set()
    counter = 0

    for root in adjacency:
        if root in visited:
            continue
        root_children = 0
        stack: list[tuple[int, iter]] = [(root, iter(adjacency[root]))]
        visited.add(root)
        parent[root] = None
        disc[root] = low[root] = counter
        counter += 1
        while stack:
            node, neighbors = stack[-1]
            advanced = False
            for nbr in neighbors:
                if nbr not in visited:
                    visited.add(nbr)
                    parent[nbr] = node
                    disc[nbr] = low[nbr] = counter
                    counter += 1
                    if node == root:
                        root_children += 1
                    stack.append((nbr, iter(adjacency[nbr])))
                    advanced = True
                    break
                if nbr != parent[node]:
                    low[node] = min(low[node], disc[nbr])
            if not advanced:
                stack.pop()
                if stack:
                    upper = stack[-1][0]
                    low[upper] = min(low[upper], low[node])
                    if upper != root and low[node] >= disc[upper]:
                        result.add(upper)
        if root_children >= 2:
            result.add(root)
    return result


def spanning_tree(topology: Topology, root: int = 0) -> set[int]:
    """Edge ids of a DFS spanning tree of *root*'s component."""
    tree: set[int] = set()
    visited = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        for _port, edge in topology.ports(node):
            other = edge.other(node).node
            if other not in visited:
                visited.add(other)
                tree.add(edge.edge_id)
                stack.append(other)
    return tree


def dfs_edge_order(
    topology: Topology, root: int, live=lambda edge: True
) -> list[tuple[int, int, int, int]]:
    """The hop sequence SmartSouth's traversal performs, computed offline.

    Follows the template's port discipline: each node probes its live ports
    in ascending order, skipping its parent port; probes to visited nodes
    bounce; finished nodes return to their parent.  Returns hops as
    (from_node, from_port, to_node, to_port).  Used by tests as an
    independent oracle for the in-band traversal (built from the *graph*
    semantics, not from the packet state machine).
    """
    hops: list[tuple[int, int, int, int]] = []
    parent_port: dict[int, int] = {root: 0}

    def visit(node: int, parent: int) -> None:
        for port, edge in topology.ports(node):
            if port == parent:
                continue
            if not live(edge):
                continue
            far = edge.other(node)
            hops.append((node, port, far.node, far.port))
            if far.node in parent_port:
                # Bounce back.
                hops.append((far.node, far.port, node, port))
            else:
                parent_port[far.node] = far.port
                visit(far.node, far.port)
                hops.append((far.node, far.port, node, port))

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * topology.num_nodes + 100))
    try:
        visit(root, 0)
    finally:
        sys.setrecursionlimit(old_limit)
    return hops
