"""Header-space symbolic execution of compiled SmartSouth pipelines.

The paper's verifiability claim — keeping SmartSouth inside plain
match-action tables keeps the forwarding state *formally analyzable* — is
made executable here.  Packet classes are represented as unions of **cubes**:
conjunctions of per-field ``(value, mask)`` constraints (header-space
algebra, cf. Kazemian et al.'s Header Space Analysis), plus a *concrete*
arrival port.  The engine propagates cubes through a switch's table pipeline
(DISPATCH → CLASSIFY → BID → SWEEP → VERIFY_*) honoring priorities,
``write_metadata``, ``set_field`` / ``dec_ttl`` actions and group execution,
and derives

* the reachable input class of every flow entry (dead-rule detection),
* the class that falls off each table (table-miss reachability),
* every possible egress (port, class) pair, and
* — via :func:`walk_network` — a whole-network symbolic traversal that can
  prove the paper's "DFS covers every edge" property without running the
  simulator.

Design notes
------------

* ``in_port`` is kept **concrete** per cube (the arrival port is always a
  small known set: ``LOCAL`` for injected triggers plus the physical ports),
  which sidesteps masked arithmetic on the negative reserved port numbers
  and makes per-arrival reasoning exact.
* ``metadata`` is an ordinary cube field, seeded fully-constrained to 0
  exactly as the pipeline register is initialized per packet.
* Smart counters (round-robin ``SELECT`` groups whose buckets only write a
  scratch field) are modelled by *havocking* the written field: the analysis
  quantifies over every possible counter value, which is exactly the right
  abstraction for properties that must hold regardless of counter state.
* Fast-failover groups have two modes: ``ff_first_only=True`` assumes every
  link is up and executes the first bucket (the deterministic failure-free
  run, used by the network walk); otherwise every bucket is explored (used
  for egress/dead-rule over-approximation).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field as dataclass_field

from repro.core.fields import GLOBAL_FIELD_BITS, cur_field, par_field
from repro.net.topology import Topology
from repro.openflow.actions import (
    DecTtl,
    GroupAction,
    Instructions,
    Output,
    SetField,
)
from repro.openflow.flowtable import FlowEntry
from repro.openflow.group import GroupType
from repro.openflow.match import (
    Match,
    full_mask,
    pair_subtract,
    pairs_intersect,
)
from repro.openflow.packet import (
    CONTROLLER_PORT,
    IN_PORT,
    LOCAL_PORT,
    is_physical_port,
    port_name,
)
from repro.openflow.switch import Switch

#: Fallback width (bits) for fields with no declared layout width.
DEFAULT_FIELD_WIDTH = 16
#: Width of the pipeline metadata register.
METADATA_WIDTH = 32


class FieldWidths:
    """Per-field bit widths used to finitize exact matches.

    Widths come from the packed layout (:data:`GLOBAL_FIELD_BITS`) where
    declared, widened by every value/mask actually observed in the rule sets
    so that exact tests always fit their field's domain.  Consistent widths
    per field name are what make cube complementation well defined.
    """

    def __init__(self, default: int = DEFAULT_FIELD_WIDTH) -> None:
        self.default = default
        self._observed: dict[str, int] = {}
        #: id(match) -> (match, in_port test, finitized non-in_port parts).
        #: The strong reference to the match keys out id reuse; widening a
        #: width invalidates everything (finitized masks may change).
        self._parts_cache: dict[int, tuple] = {}

    def observe(self, name: str, value: int) -> None:
        bits = value.bit_length()
        if bits > self._observed.get(name, 0):
            self._observed[name] = bits
            self._parts_cache.clear()

    def observe_switch(self, switch: Switch) -> None:
        """Widen widths by everything the switch's configuration mentions."""
        for _table_id, entry in switch.iter_entries():
            for test in entry.match.tests.values():
                self.observe(test.name, test.value)
                if test.mask is not None:
                    self.observe(test.name, test.mask)
            self._observe_actions(entry.instructions.apply_actions)
        for group in switch.groups.groups():
            for bucket in group.buckets:
                self._observe_actions(bucket.actions)

    def _observe_actions(self, actions) -> None:
        for action in actions:
            if isinstance(action, SetField):
                self.observe(action.name, action.value)

    def width(self, name: str) -> int:
        if name == "metadata":
            return METADATA_WIDTH
        declared = GLOBAL_FIELD_BITS.get(name, self.default)
        return max(declared, self._observed.get(name, 0))

    def match_parts(self, match: Match) -> tuple:
        """(in_port test or None, finitized non-in_port (name, value, mask)
        triples) for *match* — memoized, since the propagation loop
        intersects the same entry matches against thousands of cubes."""
        # repro: allow[DET006] in-process memo key; `is` check guards id reuse
        cached = self._parts_cache.get(id(match))
        if cached is not None and cached[0] is match:
            return cached[1], cached[2]
        in_port_test = None
        parts: list[tuple[str, int, int]] = []
        for test in match.tests.values():
            if test.name == "in_port":
                in_port_test = test
                continue
            if test.is_wildcard:
                continue
            mask = test.mask
            if mask is None:
                mask = full_mask(self.width(test.name), test.value)
            parts.append((test.name, test.value, mask))
        # repro: allow[DET006] same memo key as the lookup above
        self._parts_cache[id(match)] = (match, in_port_test, parts)
        return in_port_test, parts

    @classmethod
    def for_switches(cls, switches) -> "FieldWidths":
        widths = cls()
        for switch in switches:
            widths.observe_switch(switch)
        return widths


class Cube:
    """One packet class: per-field masked constraints + a concrete in_port.

    A field absent from ``constraints`` is unconstrained (any value of its
    domain).  Instances are immutable; all mutators return new cubes.
    """

    __slots__ = ("in_port", "constraints", "_key")

    def __init__(
        self, in_port: int, constraints: dict[str, tuple[int, int]] | None = None
    ) -> None:
        self.in_port = in_port
        self.constraints: dict[str, tuple[int, int]] = constraints or {}
        self._key: tuple | None = None

    # -- identity ------------------------------------------------------- #

    def key(self) -> tuple:
        """Hashable canonical form (used for dedup in walks)."""
        if self._key is None:
            self._key = (
                self.in_port,
                tuple(sorted(self.constraints.items())),
            )
        return self._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cube):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    # -- constraint surgery --------------------------------------------- #

    def _replaced(self, name: str, value: int, mask: int) -> "Cube":
        constraints = dict(self.constraints)
        if mask == 0:
            constraints.pop(name, None)
        else:
            constraints[name] = (value, mask)
        return Cube(self.in_port, constraints)

    def constrain(self, name: str, value: int, mask: int) -> "Cube | None":
        """Intersect with ``field & mask == value``; None if empty."""
        if mask == 0:
            return self
        have = self.constraints.get(name)
        if have is None:
            return self._replaced(name, value, mask)
        merged = pairs_intersect(have[0], have[1], value, mask)
        if merged is None:
            return None
        return self._replaced(name, merged[0], merged[1])

    def set_field(self, name: str, value: int, widths: FieldWidths) -> "Cube":
        """The effect of a ``set_field`` action: the field becomes exact."""
        return self._replaced(name, value, full_mask(widths.width(name), value))

    def havoc(self, name: str) -> "Cube":
        """Drop every constraint on *name* (unknown write)."""
        if name not in self.constraints:
            return self
        return self._replaced(name, 0, 0)

    def write_metadata(self, value: int, mask: int, widths: FieldWidths) -> "Cube":
        """``write_metadata``: masked update of the metadata register."""
        have = self.constraints.get("metadata")
        if have is None:
            return self._replaced("metadata", value & mask, mask)
        old_value, old_mask = have
        new_mask = old_mask | mask
        new_value = (old_value & ~mask) | (value & mask)
        return self._replaced("metadata", new_value & new_mask, new_mask)

    def project(self, names: "frozenset[str] | set[str]") -> "Cube":
        """Drop constraints on every field not in *names*.

        This *enlarges* the cube, but when *names* is the set of fields any
        later table can still match, the enlargement is invisible to the
        rest of the pipeline — used to collapse fragments that differ only
        in never-again-read fields (e.g. the bid table's ``opt_val`` range
        pieces)."""
        kept = {k: v for k, v in self.constraints.items() if k in names}
        if len(kept) == len(self.constraints):
            return self
        return Cube(self.in_port, kept)

    def exact_value(self, name: str, widths: FieldWidths) -> int | None:
        """The field's value if fully determined by this cube, else None."""
        have = self.constraints.get(name)
        if have is None:
            return None
        value, mask = have
        if mask == full_mask(widths.width(name), value):
            return value
        return None

    def dec_field(self, name: str, widths: FieldWidths) -> "Cube":
        """``dec_ttl``: exact values decrement (floor 0), else havoc."""
        value = self.exact_value(name, widths)
        if value is None:
            return self.havoc(name)
        return self.set_field(name, max(0, value - 1), widths)

    # -- match algebra --------------------------------------------------- #

    def _match_parts(
        self, match: Match, widths: FieldWidths
    ) -> list[tuple[int, int, int]] | None:
        """Finitized non-in_port constraints of *match*, or None if the
        match's in_port test rejects this cube's concrete arrival port."""
        in_port_test, parts = widths.match_parts(match)
        if in_port_test is not None and not in_port_test.hits(
            {"in_port": self.in_port}
        ):
            return None
        return parts

    def intersect_match(self, match: Match, widths: FieldWidths) -> "Cube | None":
        """The subclass of this cube matched by *match* (None if empty)."""
        parts = self._match_parts(match, widths)
        if parts is None:
            return None
        cube: Cube | None = self
        for name, value, mask in parts:
            cube = cube.constrain(name, value, mask)
            if cube is None:
                return None
        return cube

    def subtract_match(self, match: Match, widths: FieldWidths) -> "list[Cube]":
        """This cube minus *match*, as a union of disjoint cubes."""
        parts = self._match_parts(match, widths)
        if parts is None:
            return [self]  # match cannot hit this arrival port: disjoint
        # If the match is disjoint from the cube on some field, nothing to cut.
        for name, value, mask in parts:
            have = self.constraints.get(name)
            if have is not None and pairs_intersect(have[0], have[1], value, mask) is None:
                return [self]
        if not parts:
            return []  # the match covers the cube entirely
        pieces: list[Cube] = []
        pinned: Cube = self
        for name, value, mask in parts:
            va, ma = pinned.constraints.get(name, (0, 0))
            width = widths.width(name)
            for piece_value, piece_mask in pair_subtract(va, ma, value, mask, width):
                pieces.append(pinned._replaced(name, piece_value, piece_mask))
            merged = pairs_intersect(va, ma, value, mask)
            assert merged is not None  # checked disjointness above
            pinned = pinned._replaced(name, merged[0], merged[1])
        return pieces

    # -- reporting ------------------------------------------------------- #

    def witness(self) -> dict[str, int]:
        """A concrete example header satisfying this cube (minimal values:
        unconstrained bits are 0, matching the zero-initialized-tag model)."""
        return {
            name: value
            for name, (value, _mask) in sorted(self.constraints.items())
            if name != "metadata"
        }

    def describe(self) -> str:
        parts = [f"in_port={port_name(self.in_port)}"]
        for name, (value, mask) in sorted(self.constraints.items()):
            width = max(mask.bit_length(), 1)
            if mask == (1 << width) - 1 and value < (1 << width):
                parts.append(f"{name}={value}")
            else:
                parts.append(f"{name}={value:#x}/{mask:#x}")
        return ", ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cube({self.describe()})"


def cube_from_match(
    match: Match, in_port: int, widths: FieldWidths
) -> Cube | None:
    """The packet class described by *match* at concrete arrival *in_port*
    (None when the match's in_port test excludes that port)."""
    return Cube(in_port).intersect_match(match, widths)


# --------------------------------------------------------------------- #
# Per-switch propagation                                                #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Egress:
    """One symbolic emission: *cube* leaves the switch on *port*.

    ``port`` is resolved (``IN_PORT`` becomes the cube's arrival port);
    ``source`` names the emitting rule cookie, with a ``group:<gid>``
    suffix when the output sat in a group bucket.
    """

    port: int
    cube: Cube
    table_id: int
    entry_index: int
    source: str


@dataclass
class PropagationResult:
    """Everything one (or many merged) seed propagation(s) produced."""

    #: (table_id, entry_index) -> reachable input classes of that entry.
    hits: dict[tuple[int, int], list[Cube]] = dataclass_field(default_factory=dict)
    #: table_id -> classes that matched nothing in that table (drops).
    misses: dict[int, list[Cube]] = dataclass_field(default_factory=dict)
    egresses: list[Egress] = dataclass_field(default_factory=list)
    #: goto targets that were missing or non-forward, hit symbolically.
    dangling: list[tuple[int, int, int]] = dataclass_field(default_factory=list)

    def merge(self, other: "PropagationResult") -> None:
        for key, cubes in other.hits.items():
            self.hits.setdefault(key, []).extend(cubes)
        for table_id, cubes in other.misses.items():
            self.misses.setdefault(table_id, []).extend(cubes)
        self.egresses.extend(other.egresses)
        self.dangling.extend(other.dangling)


class SwitchAnalyzer:
    """Symbolic executor for one compiled switch."""

    def __init__(
        self,
        switch: Switch,
        widths: FieldWidths | None = None,
        ff_first_only: bool = False,
        project_unmatched: bool = False,
    ) -> None:
        self.switch = switch
        if widths is None:
            widths = FieldWidths.for_switches([switch])
        self.widths = widths
        self.ff_first_only = ff_first_only
        #: table_id -> [(index, entry)] in match (priority) order.
        self.entries: dict[int, list[tuple[int, FlowEntry]]] = {
            table_id: switch.tables[table_id].indexed_entries()
            for table_id in sorted(switch.tables)
        }
        # Projection keeps cube populations small by dropping constraints no
        # later table reads.  Exact for hit/miss/shadow facts on THIS switch
        # but enlarges recorded egress cubes, so walk analyzers (which feed
        # egresses to neighbours) must keep it off.
        self.project_unmatched = project_unmatched
        self._matched_from: dict[int, frozenset[str]] = {}
        if project_unmatched:
            acc: set[str] = set()
            for table_id in sorted(self.entries, reverse=True):
                for _index, entry in self.entries[table_id]:
                    acc |= set(entry.match.field_names())
                self._matched_from[table_id] = frozenset(acc)

    # -- seeds ----------------------------------------------------------- #

    def seed(self, in_port: int, fields: dict[str, tuple[int, int]] | None = None) -> Cube:
        """A pipeline-entry cube: metadata register concretely 0."""
        constraints = {"metadata": (0, full_mask(METADATA_WIDTH))}
        if fields:
            constraints.update(fields)
        return Cube(in_port, constraints)

    def free_seeds(self, include_local: bool = False) -> list[Cube]:
        """'Any arrival' seeds: one per (physical, optionally LOCAL) port,
        every header field unconstrained."""
        ports = ([LOCAL_PORT] if include_local else []) + list(
            range(1, self.switch.num_ports + 1)
        )
        return [self.seed(port) for port in ports]

    # -- propagation ----------------------------------------------------- #

    def propagate(self, seed: Cube) -> PropagationResult:
        """Run *seed* through the pipeline from table 0."""
        result = PropagationResult()
        if 0 not in self.entries:
            return result
        worklist: deque[tuple[int, Cube]] = deque([(0, seed)])
        queued: set[tuple[int, tuple]] = {(0, seed.key())}
        while worklist:
            table_id, cube = worklist.popleft()
            for goto, cont in self._run_table(table_id, cube, result):
                if self.project_unmatched:
                    cont = cont.project(self._matched_from[goto])
                token = (goto, cont.key())
                if token not in queued:
                    queued.add(token)
                    worklist.append((goto, cont))
        return result

    def _run_table(
        self, table_id: int, cube: Cube, result: PropagationResult
    ) -> list[tuple[int, Cube]]:
        """Match *cube* in one table; returns (goto_table, cube) successors."""
        successors: list[tuple[int, Cube]] = []
        remaining = [cube]
        for index, entry in self.entries[table_id]:
            if not remaining:
                break
            hits = []
            for part in remaining:
                hit = part.intersect_match(entry.match, self.widths)
                if hit is not None:
                    hits.append(hit)
            if not hits:
                continue
            result.hits.setdefault((table_id, index), []).extend(hits)
            source = entry.cookie or f"table{table_id}[{index}]"
            for hit in hits:
                continuations = self._apply_instructions(
                    entry.instructions, hit, result, table_id, index, source
                )
                goto = entry.instructions.goto_table
                if goto is not None:
                    if goto <= table_id or goto not in self.entries:
                        result.dangling.append((table_id, index, goto))
                    else:
                        successors.extend((goto, cont) for cont in continuations)
            remaining = [
                piece
                for part in remaining
                for piece in part.subtract_match(entry.match, self.widths)
            ]
        if remaining:
            result.misses.setdefault(table_id, []).extend(remaining)
        return successors

    def _apply_instructions(
        self,
        instructions: Instructions,
        cube: Cube,
        result: PropagationResult,
        table_id: int,
        entry_index: int,
        source: str,
    ) -> list[Cube]:
        if instructions.write_metadata is not None:
            value, mask = instructions.write_metadata
            cube = cube.write_metadata(value, mask, self.widths)
        return self._apply_actions(
            [cube], instructions.apply_actions, result, table_id, entry_index,
            source, frozenset(),
        )

    def _apply_actions(
        self,
        cubes: list[Cube],
        actions,
        result: PropagationResult,
        table_id: int,
        entry_index: int,
        source: str,
        active_groups: frozenset[int],
    ) -> list[Cube]:
        for action in actions:
            next_cubes: list[Cube] = []
            for cube in cubes:
                if isinstance(action, SetField):
                    next_cubes.append(
                        cube.set_field(action.name, action.value, self.widths)
                    )
                elif isinstance(action, Output):
                    port = cube.in_port if action.port == IN_PORT else action.port
                    result.egresses.append(
                        Egress(port, cube, table_id, entry_index, source)
                    )
                    next_cubes.append(cube)
                elif isinstance(action, GroupAction):
                    next_cubes.extend(
                        self._exec_group(
                            action.group_id, cube, result, table_id,
                            entry_index, source, active_groups,
                        )
                    )
                elif isinstance(action, DecTtl):
                    next_cubes.append(cube.dec_field(action.field_name, self.widths))
                else:  # PushLabel / PopLabel: the label stack is never matched
                    next_cubes.append(cube)
            cubes = next_cubes
        return cubes

    def _exec_group(
        self,
        group_id: int,
        cube: Cube,
        result: PropagationResult,
        table_id: int,
        entry_index: int,
        source: str,
        active_groups: frozenset[int],
    ) -> list[Cube]:
        if group_id not in self.switch.groups or group_id in active_groups:
            # Missing group / chaining loop: structurally reported elsewhere;
            # keep the analysis robust by treating it as a no-op.
            return [cube]
        group = self.switch.groups.get(group_id)
        active = active_groups | {group_id}
        tag = f"{source}|group:{group_id}"

        def run_bucket(bucket, start: Cube) -> list[Cube]:
            return self._apply_actions(
                [start], bucket.actions, result, table_id, entry_index, tag, active
            )

        if group.group_type is GroupType.ALL:
            for bucket in group.buckets:
                run_bucket(bucket, cube)  # clones: continuation is unchanged
            return [cube]
        if group.group_type is GroupType.INDIRECT:
            return run_bucket(group.buckets[0], cube) if group.buckets else [cube]
        if group.group_type is GroupType.FF:
            if not group.buckets:
                return []  # no bucket can fire: packet dropped
            if self.ff_first_only:
                # All links assumed up: the first bucket is live.
                return run_bucket(group.buckets[0], cube)
            merged: list[Cube] = []
            for bucket in group.buckets:
                merged.extend(run_bucket(bucket, cube))
            return merged
        # SELECT (round robin).  A smart counter — every bucket only writes
        # header fields — is modelled as an unknown write (havoc), which
        # quantifies the analysis over all counter values without branching.
        if group.buckets and all(
            isinstance(action, SetField)
            for bucket in group.buckets
            for action in bucket.actions
        ):
            written = {
                action.name for bucket in group.buckets for action in bucket.actions
            }
            havocked = cube
            for name in sorted(written):
                havocked = havocked.havoc(name)
            return [havocked]
        merged = []
        for bucket in group.buckets:
            merged.extend(run_bucket(bucket, cube))
        return merged

    # -- derived whole-switch facts -------------------------------------- #

    def analyze(self, seeds: list[Cube] | None = None) -> PropagationResult:
        """Propagate all *seeds* (default: free seeds incl. LOCAL) merged."""
        if seeds is None:
            seeds = self.free_seeds(include_local=True)
        result = PropagationResult()
        for seed in seeds:
            result.merge(self.propagate(seed))
        return result

    def shadowed_entries(self) -> list[tuple[int, int, FlowEntry, list[str]]]:
        """Entries fully covered by strictly-higher-priority entries.

        Returns (table_id, index, entry, covering_cookies) tuples.  The check
        is purely local (any header, any metadata): a shadowed rule can never
        fire regardless of what the rest of the pipeline delivers.
        """
        shadowed: list[tuple[int, int, FlowEntry, list[str]]] = []
        for table_id, indexed in self.entries.items():
            for index, entry in indexed:
                higher = [
                    other
                    for _j, other in indexed
                    if other.priority > entry.priority
                ]
                if not higher:
                    continue
                # Cheap prune: only overlapping higher entries can cover.
                covering = [
                    other
                    for other in higher
                    if _matches_may_overlap(entry.match, other.match)
                ]
                if not covering:
                    continue
                if self._entry_is_covered(entry, covering):
                    shadowed.append(
                        (table_id, index, entry, [e.cookie for e in covering])
                    )
        return shadowed

    def _entry_is_covered(self, entry: FlowEntry, covering: list[FlowEntry]) -> bool:
        saw_domain = False
        for in_port in self._in_port_domain(entry.match):
            cube = cube_from_match(entry.match, in_port, self.widths)
            if cube is None:
                continue
            saw_domain = True
            residual = [cube]
            for other in covering:
                residual = [
                    piece
                    for part in residual
                    for piece in part.subtract_match(other.match, self.widths)
                ]
                if not residual:
                    break
            if residual:
                return False
        return saw_domain

    def _in_port_domain(self, match: Match) -> list[int]:
        test = match.tests.get("in_port")
        if test is not None and test.mask is None:
            return [test.value]
        return [LOCAL_PORT] + list(range(1, self.switch.num_ports + 1))

    def entries_overlap(self, a: FlowEntry, b: FlowEntry) -> bool:
        """Precise overlap: some concrete packet matches both entries."""
        if not _matches_may_overlap(a.match, b.match):
            return False
        for in_port in self._in_port_domain(a.match):
            cube = cube_from_match(a.match, in_port, self.widths)
            if cube is None:
                continue
            if cube.intersect_match(b.match, self.widths) is not None:
                return True
        return False

    def ambiguous_overlaps(
        self,
    ) -> list[tuple[int, int, FlowEntry, FlowEntry]]:
        """Same-priority, same-table entry pairs that overlap but behave
        differently — OpenFlow leaves which one fires undefined.

        Returns (table_id, priority, entry_a, entry_b) tuples; both the
        verifier and lint rule SS008 report from this single source.
        """
        out: list[tuple[int, int, FlowEntry, FlowEntry]] = []
        for table_id, indexed in self.entries.items():
            by_priority: dict[int, list[FlowEntry]] = {}
            for _index, entry in indexed:
                by_priority.setdefault(entry.priority, []).append(entry)
            for priority, group in by_priority.items():
                for i, a in enumerate(group):
                    for b in group[i + 1 :]:
                        if a.behaviour() == b.behaviour():
                            continue
                        if self.entries_overlap(a, b):
                            out.append((table_id, priority, a, b))
        return out


def _matches_may_overlap(a: Match, b: Match) -> bool:
    """Cheap per-field overlap test (no width information needed)."""
    for name, test_a in a.tests.items():
        test_b = b.tests.get(name)
        if test_b is None:
            continue
        if test_a.is_wildcard or test_b.is_wildcard:
            continue
        if pairs_intersect(test_a.value, test_a.mask, test_b.value, test_b.mask) is None:
            return False
    return True


# --------------------------------------------------------------------- #
# Whole-network symbolic traversal                                      #
# --------------------------------------------------------------------- #


@dataclass
class WalkResult:
    """Outcome of one symbolic network traversal from a root."""

    root: int
    states: int = 0
    exhausted: bool = False
    #: (node, port) pairs that emitted at least one packet.
    swept: set[tuple[int, int]] = dataclass_field(default_factory=set)
    #: node -> (table_id, entry_index) -> number of symbolic hits.
    hits: dict[int, dict[tuple[int, int], int]] = dataclass_field(default_factory=dict)
    #: (node, table_id, cube) table misses reached by the walk.
    misses: list[tuple[int, int, Cube]] = dataclass_field(default_factory=list)
    #: (node, cube) controller reports reached by the walk.
    reports: list[tuple[int, Cube]] = dataclass_field(default_factory=list)
    #: (node, cube) local deliveries reached by the walk.
    deliveries: list[tuple[int, Cube]] = dataclass_field(default_factory=list)

    def unswept_ports(self, topology: Topology) -> list[tuple[int, int]]:
        """Physical ports the walk never emitted on (should be empty: the
        paper's DFS-covers-all-edges property)."""
        expected = {
            (node, port)
            for node in topology.nodes()
            for port in range(1, topology.degree(node) + 1)
        }
        return sorted(expected - self.swept)


def zero_state_fields(
    switches: dict[int, Switch], topology: Topology, widths: FieldWidths
) -> dict[str, tuple[int, int]]:
    """Constraints pinning every SmartSouth field to 0 (the paper's
    "all tag fields are initialized to 0" injection state)."""
    names: set[str] = set(GLOBAL_FIELD_BITS)
    for node in topology.nodes():
        names.add(par_field(node))
        names.add(cur_field(node))
    for switch in switches.values():
        for _table_id, entry in switch.iter_entries():
            for name in entry.match.field_names():
                if name not in ("in_port", "metadata"):
                    names.add(name)
    return {name: (0, full_mask(widths.width(name))) for name in sorted(names)}


#: Default budget of symbolic states explored per walk.
DEFAULT_WALK_BUDGET = 50_000


def walk_network(
    switches: dict[int, Switch],
    topology: Topology,
    root: int,
    trigger_fields: dict[str, int | None] | None = None,
    widths: FieldWidths | None = None,
    max_states: int = DEFAULT_WALK_BUDGET,
    analyzers: dict[int, SwitchAnalyzer] | None = None,
) -> WalkResult:
    """Symbolically walk a trigger-packet class through the network.

    The trigger is injected at *root* on the LOCAL port with every
    SmartSouth field pinned to 0, overridden by *trigger_fields* — a value
    of ``None`` frees the field entirely (e.g. an unconstrained ``gid``
    analyzes every anycast request at once).  Fast-failover groups take
    their first bucket (all links assumed up), so the walk follows the
    failure-free DFS while staying symbolic over header contents.
    """
    if widths is None:
        widths = FieldWidths.for_switches(switches.values())
    if analyzers is None:
        analyzers = {
            node: SwitchAnalyzer(switch, widths, ff_first_only=True)
            for node, switch in switches.items()
        }
    base = zero_state_fields(switches, topology, widths)
    constraints = dict(base)
    for name, value in (trigger_fields or {}).items():
        if value is None:
            constraints.pop(name, None)
        else:
            constraints[name] = (value, full_mask(widths.width(name), value))
    constraints["metadata"] = (0, full_mask(METADATA_WIDTH))
    trigger = Cube(LOCAL_PORT, constraints)

    result = WalkResult(root=root)
    worklist: deque[tuple[int, int, Cube]] = deque([(root, LOCAL_PORT, trigger)])
    seen: set[tuple[int, int, tuple]] = {(root, LOCAL_PORT, trigger.key())}
    while worklist:
        if result.states >= max_states:
            result.exhausted = True
            break
        node, in_port, cube = worklist.popleft()
        result.states += 1
        if in_port != cube.in_port:
            cube = Cube(in_port, cube.constraints)
        # Re-enter the pipeline: the metadata register resets per packet.
        cube = cube.write_metadata(0, full_mask(METADATA_WIDTH), widths)
        step = analyzers[node].propagate(cube)
        node_hits = result.hits.setdefault(node, {})
        for key, cubes in step.hits.items():
            node_hits[key] = node_hits.get(key, 0) + len(cubes)
        for table_id, cubes in step.misses.items():
            for miss in cubes:
                result.misses.append((node, table_id, miss))
        for egress in step.egresses:
            if egress.port == CONTROLLER_PORT:
                result.reports.append((node, egress.cube))
                continue
            if egress.port == LOCAL_PORT:
                result.deliveries.append((node, egress.cube))
                continue
            if not is_physical_port(egress.port):
                continue
            result.swept.add((node, egress.port))
            peer = topology.neighbor(node, egress.port)
            if peer is None:
                continue  # nonexistent port: structurally reported elsewhere
            token = (peer.node, peer.port, egress.cube.key())
            if token not in seen:
                seen.add(token)
                worklist.append((peer.node, peer.port, egress.cube))
    return result
