"""Drive the sanitizer: parse → rules → suppressions → baseline → report."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.analysis.static import rules as _rules  # noqa: F401 - registers
from repro.analysis.static.baseline import (
    apply_baseline,
    discover_baseline,
    load_baseline,
)
from repro.analysis.static.findings import (
    SAN_RULES,
    SanFinding,
    SanReport,
    replace,
)
from repro.analysis.static.walker import ModuleModel, build_models


@dataclass(frozen=True)
class SanConfig:
    """Knobs for one sanitizer run (CLI flags map straight onto these)."""

    disable: frozenset[str] = frozenset()
    #: Restrict the run to these rule ids (None = all registered).
    rules: tuple[str, ...] | None = None


def default_scan_root() -> Path:
    """The installed ``repro`` package directory (the repro source)."""
    import repro

    return Path(repro.__file__).resolve().parent


def analyze_models(
    models: Iterable[ModuleModel], config: SanConfig | None = None
) -> tuple[list[SanFinding], list[str]]:
    """Run the selected rules over parsed modules; apply suppressions."""
    config = config or SanConfig()
    selected = [
        SAN_RULES[rule_id]
        for rule_id in (config.rules if config.rules is not None else SAN_RULES)
        if rule_id in SAN_RULES and rule_id not in config.disable
    ]
    findings: list[SanFinding] = []
    for model in models:
        for rule in selected:
            for finding in rule.func(model, rule):
                if model.is_suppressed(finding.line, finding.rule):
                    finding = replace(finding, suppressed=True)
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, [rule.rule_id for rule in selected]


def run_sancheck(
    root: Path | None = None,
    rel_base: Path | None = None,
    baseline_path: Path | None = None,
    config: SanConfig | None = None,
    use_baseline: bool = True,
) -> SanReport:
    """Analyze the source tree under *root* and gate against the baseline.

    *root* defaults to the installed ``repro`` package; *baseline_path*
    defaults to the nearest ``sancheck-baseline.json`` above it (none found
    means no baseline, so every finding is new).
    """
    root = (root or default_scan_root()).resolve()
    models = build_models(root, rel_base=rel_base)
    findings, rules_run = analyze_models(models, config)
    stale: list[dict] = []
    resolved_baseline: Path | None = None
    if use_baseline:
        resolved_baseline = (
            Path(baseline_path) if baseline_path else discover_baseline(root)
        )
        if resolved_baseline is not None and resolved_baseline.is_file():
            findings, stale = apply_baseline(
                findings, load_baseline(resolved_baseline)
            )
    return SanReport(
        findings=findings,
        files=len(models),
        rules_run=rules_run,
        root=str(root),
        baseline_path=str(resolved_baseline) if resolved_baseline else None,
        stale_baseline=stale,
    )
