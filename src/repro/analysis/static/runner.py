"""Drive the sanitizers: parse → rules → suppressions → baseline → report.

Two passes share this driver.  ``run_sancheck`` is the per-site pass
(``DET``/``RACE`` over one module at a time); ``run_shardcheck`` is the
interprocedural pass — call graph, effect fixpoint, ownership manifest,
``EFF``/``SHARD`` rules — with its own baseline file and the committed
effect-summary artifact (``shardcheck-effects.json``) as the declared
sharding contract.

Both accept *multiple roots* (``--root`` is repeatable): each root's
findings are keyed relative to the root's parent, so scanning
``src/repro`` yields ``repro/...`` paths (stable baselines) and scanning
``benchmarks/`` from the repo root yields ``benchmarks/...``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.static import rules as _rules  # noqa: F401 - registers
from repro.analysis.static.baseline import (
    SHARD_BASELINE_NAME,
    apply_baseline,
    discover_baseline,
    load_baseline,
)
from repro.analysis.static.findings import (
    SAN_RULES,
    SanFinding,
    SanReport,
    replace,
)
from repro.analysis.static.walker import ModuleModel, build_models

#: The committed per-public-API effect summary (the sharding contract),
#: discovered like the baselines by walking up from the scan root.
EFFECTS_NAME = "shardcheck-effects.json"


@dataclass(frozen=True)
class SanConfig:
    """Knobs for one sanitizer run (CLI flags map straight onto these)."""

    disable: frozenset[str] = frozenset()
    #: Restrict the run to these rule ids (None = all registered).
    rules: tuple[str, ...] | None = None


def default_scan_root() -> Path:
    """The installed ``repro`` package directory (the repro source)."""
    import repro

    return Path(repro.__file__).resolve().parent


def build_root_models(
    roots: Sequence[Path], rel_base: Path | None = None
) -> list[ModuleModel]:
    """Parse every root; findings are keyed relative to each root's own
    parent (unless *rel_base* pins one anchor for all of them)."""
    models: list[ModuleModel] = []
    for root in roots:
        models.extend(build_models(Path(root).resolve(), rel_base=rel_base))
    return models


def _path_map(models: Iterable[ModuleModel]) -> dict[str, str]:
    """finding relpath -> checkout-relative path (for GitHub annotations)."""
    cwd = Path.cwd().resolve()
    out: dict[str, str] = {}
    for model in models:
        try:
            out[model.relpath] = model.path.resolve().relative_to(
                cwd
            ).as_posix()
        except ValueError:
            out[model.relpath] = str(model.path)
    return out


def analyze_models(
    models: Iterable[ModuleModel], config: SanConfig | None = None
) -> tuple[list[SanFinding], list[str]]:
    """Run the selected rules over parsed modules; apply suppressions."""
    config = config or SanConfig()
    selected = [
        SAN_RULES[rule_id]
        for rule_id in (config.rules if config.rules is not None else SAN_RULES)
        if rule_id in SAN_RULES and rule_id not in config.disable
    ]
    findings: list[SanFinding] = []
    for model in models:
        for rule in selected:
            for finding in rule.func(model, rule):
                if model.is_suppressed(finding.line, finding.rule):
                    finding = replace(finding, suppressed=True)
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, [rule.rule_id for rule in selected]


def run_sancheck(
    root: Path | None = None,
    rel_base: Path | None = None,
    baseline_path: Path | None = None,
    config: SanConfig | None = None,
    use_baseline: bool = True,
    roots: Sequence[Path] | None = None,
) -> SanReport:
    """Analyze the source tree(s) and gate against the baseline.

    *roots* (or the single *root*) default to the installed ``repro``
    package; *baseline_path* defaults to the nearest
    ``sancheck-baseline.json`` above the first root (none found means no
    baseline, so every finding is new).
    """
    scan_roots = [Path(r).resolve() for r in (roots or [])]
    if root is not None:
        scan_roots.insert(0, Path(root).resolve())
    if not scan_roots:
        scan_roots = [default_scan_root()]
    models = build_root_models(scan_roots, rel_base=rel_base)
    findings, rules_run = analyze_models(models, config)
    stale: list[dict] = []
    resolved_baseline: Path | None = None
    if use_baseline:
        resolved_baseline = (
            Path(baseline_path)
            if baseline_path
            else discover_baseline(scan_roots[0])
        )
        if resolved_baseline is not None and resolved_baseline.is_file():
            findings, stale = apply_baseline(
                findings, load_baseline(resolved_baseline)
            )
    return SanReport(
        findings=findings,
        files=len(models),
        rules_run=rules_run,
        root=", ".join(str(r) for r in scan_roots),
        baseline_path=str(resolved_baseline) if resolved_baseline else None,
        stale_baseline=stale,
        path_map=_path_map(models),
    )


# --------------------------------------------------------------------- #
# Interprocedural pass                                                  #
# --------------------------------------------------------------------- #


@dataclass
class ShardReport(SanReport):
    """A sanitizer report plus the interprocedural evidence behind it."""

    #: Call-graph resolution stats (rate, per-reason unresolved counts).
    resolution: dict = field(default_factory=dict)
    #: Every unresolved call site, as dicts (counted, never dropped).
    unresolved: list[dict] = field(default_factory=list)
    #: Computed per-public-API effect summary (fqn -> sorted atoms).
    effects: dict[str, list[str]] = field(default_factory=dict)
    #: Path of the committed effect summary, when one was found.
    effects_path: str | None = None

    def summary(self) -> str:
        rate = self.resolution.get("resolution_rate", 0.0)
        return (
            f"shardcheck: {len(self.active)} new, "
            f"{len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed finding(s) "
            f"across {self.files} file(s); "
            f"{rate:.1%} of {self.resolution.get('call_sites', 0)} call "
            f"sites resolved ({self.resolution.get('unresolved', 0)} "
            f"unresolved, reported)"
        )

    def to_json(self) -> dict:
        payload = super().to_json()
        payload["resolution"] = self.resolution
        payload["unresolved_sites"] = self.unresolved
        payload["effects"] = self.effects
        payload["effects_path"] = self.effects_path
        return payload

    def effects_payload(self) -> dict:
        """The committed-artifact shape for ``--write-effects``."""
        return {
            "_comment": (
                "Per-public-API transitive effect summary — the declared "
                "sharding contract. EFF003 flags drift against this file. "
                "Regenerate with: smartsouth shardcheck --write-effects"
            ),
            "version": 1,
            "apis": self.effects,
        }


def analyze_program(
    models: list[ModuleModel],
    config: SanConfig | None = None,
    manifest=None,
    committed_effects: dict[str, list[str]] | None = None,
):
    """Build the call graph + effect table and run the IPA rules.

    Returns ``(findings, rules_run, program, table)`` — the corpus tests
    and the shardcheck driver share this path.
    """
    from repro.analysis.static.callgraph import build_program
    from repro.analysis.static.effects import build_effect_table
    from repro.analysis.static.shardmodel import default_manifest
    from repro.analysis.static.shardrules import IPA_RULES, ShardContext

    config = config or SanConfig()
    manifest = manifest or default_manifest()
    program = build_program(models)
    table = build_effect_table(program, manifest)
    ctx = ShardContext(
        program=program,
        manifest=manifest,
        table=table,
        committed_effects=committed_effects,
    )
    selected = [
        IPA_RULES[rule_id]
        for rule_id in (config.rules if config.rules is not None else IPA_RULES)
        if rule_id in IPA_RULES and rule_id not in config.disable
    ]
    findings: list[SanFinding] = []
    for rule in selected:
        for finding in rule.func(ctx, rule):
            model = program.models_by_path.get(finding.path)
            if model is not None and model.is_suppressed(
                finding.line, finding.rule
            ):
                finding = replace(finding, suppressed=True)
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, [rule.rule_id for rule in selected], program, table


def load_effects(path: Path) -> dict[str, list[str]]:
    """The committed effect summary's ``apis`` table."""
    data = json.loads(Path(path).read_text())
    return {fqn: list(atoms) for fqn, atoms in data.get("apis", {}).items()}


def run_shardcheck(
    root: Path | None = None,
    rel_base: Path | None = None,
    baseline_path: Path | None = None,
    config: SanConfig | None = None,
    use_baseline: bool = True,
    roots: Sequence[Path] | None = None,
    effects_path: Path | None = None,
    use_effects: bool = True,
) -> ShardReport:
    """The whole-program pass: call graph, effects, EFF/SHARD rules.

    Baselined separately from sancheck (``shardcheck-baseline.json``);
    the committed effect summary is discovered the same way and feeds
    EFF003 (drift) when present.
    """
    scan_roots = [Path(r).resolve() for r in (roots or [])]
    if root is not None:
        scan_roots.insert(0, Path(root).resolve())
    if not scan_roots:
        scan_roots = [default_scan_root()]
    models = build_root_models(scan_roots, rel_base=rel_base)

    committed: dict[str, list[str]] | None = None
    resolved_effects: Path | None = None
    if use_effects:
        resolved_effects = (
            Path(effects_path)
            if effects_path
            else discover_baseline(scan_roots[0], name=EFFECTS_NAME)
        )
        if resolved_effects is not None and resolved_effects.is_file():
            committed = load_effects(resolved_effects)
        else:
            resolved_effects = None

    findings, rules_run, program, table = analyze_program(
        models, config, committed_effects=committed
    )

    stale: list[dict] = []
    resolved_baseline: Path | None = None
    if use_baseline:
        resolved_baseline = (
            Path(baseline_path)
            if baseline_path
            else discover_baseline(scan_roots[0], name=SHARD_BASELINE_NAME)
        )
        if resolved_baseline is not None and resolved_baseline.is_file():
            findings, stale = apply_baseline(
                findings, load_baseline(resolved_baseline)
            )

    return ShardReport(
        findings=findings,
        files=len(models),
        rules_run=rules_run,
        root=", ".join(str(r) for r in scan_roots),
        baseline_path=str(resolved_baseline) if resolved_baseline else None,
        stale_baseline=stale,
        path_map=_path_map(models),
        resolution=program.resolution_stats(),
        unresolved=[e.to_dict() for e in program.unresolved_sites()],
        effects=table.public_summary(),
        effects_path=str(resolved_effects) if resolved_effects else None,
    )
