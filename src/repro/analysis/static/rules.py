"""The built-in sanitizer rules: determinism (DET) and shared state (RACE).

Every rule is a :func:`~repro.analysis.static.findings.san_rule`-decorated
generator over one :class:`~repro.analysis.static.walker.ModuleModel`;
third-party rules register the same way.  The catalogue, with the hazard
each rule encodes for the sharded-simulator roadmap, lives in
``docs/STATIC_ANALYSIS.md``.

Determinism rules flag sources of run-to-run divergence: process-global or
OS-entropy randomness, wall-clock reads outside the allowlisted provider,
hash-order escaping into iteration/serialization, and allocation-order
(``id()``) or ``PYTHONHASHSEED``-dependent (``hash()``) values used where
order matters.  Shared-state rules flag the mutation patterns that turn
into cross-process races the moment the simulator shards: module globals
mutated from functions, class attributes mutated through ``self`` aliasing,
and mutable default arguments.
"""

from __future__ import annotations

import ast

from repro.analysis.static.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    SanRule,
    san_rule,
)
from repro.analysis.static.walker import (
    MUTATOR_METHODS,
    ModuleModel,
    declares_global,
    is_local_name,
)

#: The one module allowed to construct RNGs and read wall clocks
#: (:mod:`repro.core.determinism`); everything else must go through it.
PROVIDER_MODULES = frozenset({"repro/core/determinism.py"})

#: ``random``-module functions that drive the *process-global* RNG.
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "seed",
        "getrandbits",
        "gauss",
        "betavariate",
        "expovariate",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "triangular",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Entropy sources that can never be seeded.
_ENTROPY_ORIGINS = frozenset(
    {"os.urandom", "uuid.uuid1", "uuid.uuid4", "random.SystemRandom"}
)

#: Wall-clock reads (virtual time lives on ``network.sim.now``).
_CLOCK_ORIGINS = frozenset(
    {
        *(
            f"time.{name}"
            for name in (
                "time",
                "time_ns",
                "monotonic",
                "monotonic_ns",
                "perf_counter",
                "perf_counter_ns",
                "process_time",
                "process_time_ns",
                "localtime",
                "gmtime",
                "ctime",
                "strftime",
            )
        ),
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Order-sensitive builtin consumers for DET005 (``sorted``/``min``/``max``/
#: ``sum``/``len``/``any``/``all`` are order-*insensitive* and stay legal).
_ORDER_SENSITIVE_CALLS = frozenset(
    {"builtins.list", "builtins.tuple", "builtins.iter", "builtins.enumerate"}
)


def _calls(model: ModuleModel):
    for node in ast.walk(model.tree):
        if isinstance(node, ast.Call):
            yield node, model.resolve_call(node)


# --------------------------------------------------------------------- #
# Determinism rules                                                     #
# --------------------------------------------------------------------- #


@san_rule(
    "DET001",
    "unseeded-rng",
    SEVERITY_ERROR,
    fix_hint="draw from repro.core.determinism.seeded_rng(seed) / "
    "derive_rng(master, *labels) instead of the process-global RNG",
)
def check_unseeded_rng(model: ModuleModel, rule: SanRule):
    """Process-global or unseeded randomness: ``random.random()`` and
    friends share one hidden global stream (any new caller perturbs every
    existing one), and ``random.Random()`` with no seed reads OS entropy.
    Both make runs unreproducible; under sharding the global stream also
    becomes a cross-process divergence.  Only the central provider module
    may construct RNGs."""
    if model.relpath in PROVIDER_MODULES:
        return
    for call, origin in _calls(model):
        if origin is None:
            continue
        if origin == "random.Random" and not call.args and not call.keywords:
            yield rule.finding(
                model, call, "random.Random() with no seed reads OS entropy"
            )
        elif (
            origin.startswith("random.")
            and origin.removeprefix("random.") in _GLOBAL_RNG_FUNCS
        ):
            yield rule.finding(
                model,
                call,
                f"{origin}() draws from the hidden process-global RNG",
            )


@san_rule(
    "DET002",
    "entropy-source",
    SEVERITY_ERROR,
    fix_hint="derive the value from the run's seed "
    "(repro.core.determinism.derive_seed) — never from OS entropy",
)
def check_entropy_source(model: ModuleModel, rule: SanRule):
    """OS entropy can never be seeded: ``os.urandom``, ``uuid.uuid1/4``,
    ``random.SystemRandom`` and everything in ``secrets`` produce different
    bytes on every run, so any trace, id, or decision they touch diverges.
    (``uuid.uuid5`` is a deterministic hash and stays legal.)"""
    for call, origin in _calls(model):
        if origin is None:
            continue
        if origin in _ENTROPY_ORIGINS or origin.startswith("secrets."):
            yield rule.finding(
                model, call, f"{origin}() is unseedable OS entropy"
            )


@san_rule(
    "DET003",
    "wall-clock",
    SEVERITY_ERROR,
    fix_hint="use the simulator's virtual clock (network.sim.now) or the "
    "packet-step logical clock; benches may call "
    "repro.core.determinism.wall_clock()",
)
def check_wall_clock(model: ModuleModel, rule: SanRule):
    """A wall-clock read outside the allowlisted clock module: anything it
    feeds — timestamps in payloads, timeouts, ordering — varies run to run
    and machine to machine.  Simulation time is ``network.sim.now``; the
    one sanctioned wall-clock read is ``determinism.wall_clock()``."""
    if model.relpath in PROVIDER_MODULES:
        return
    for call, origin in _calls(model):
        if origin in _CLOCK_ORIGINS:
            yield rule.finding(
                model, call, f"{origin}() reads the wall clock"
            )


@san_rule(
    "DET004",
    "unsorted-json",
    SEVERITY_WARNING,
    fix_hint="pass sort_keys=True so byte-identity cannot depend on dict "
    "insertion order",
)
def check_unsorted_json(model: ModuleModel, rule: SanRule):
    """``json.dumps``/``json.dump`` without ``sort_keys=True``: the byte
    output then depends on dict insertion order, which refactors silently
    change — and same-seed byte-identity (chaos reports, golden traces) is
    this repo's oracle.  Serializing a dict *literal* with constant keys is
    exempt: its order is part of the source."""
    for call, origin in _calls(model):
        if origin not in ("json.dumps", "json.dump"):
            continue
        if any(
            kw.arg == "sort_keys"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in call.keywords
        ):
            continue
        payload = call.args[0] if call.args else None
        if payload is not None and _is_constant_key_dict(model, call, payload):
            continue
        yield rule.finding(
            model, call, f"{origin}() without sort_keys=True"
        )


def _is_constant_key_dict(model: ModuleModel, call: ast.Call, expr) -> bool:
    """Is *expr* a dict literal with constant keys (directly, or a local
    name assigned one in the same scope)?"""

    def literal_ok(node) -> bool:
        return isinstance(node, ast.Dict) and all(
            isinstance(key, ast.Constant) for key in node.keys
        )

    if literal_ok(expr):
        return True
    if not isinstance(expr, ast.Name):
        return False
    scope = model.enclosing_scope(call)
    for stmt in ast.walk(scope):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == expr.id
        ):
            if literal_ok(stmt.value):
                return True
    return False


@san_rule(
    "DET005",
    "unordered-iteration",
    SEVERITY_WARNING,
    fix_hint="wrap the set in sorted(...) before its order can escape "
    "(membership tests and sorted/min/max/sum/len/any/all stay as-is)",
)
def check_unordered_iteration(model: ModuleModel, rule: SanRule):
    """Iteration order of a set escapes into an ordered consumer (a for
    loop, list/dict comprehension, ``list``/``tuple``/``iter``/
    ``enumerate``/``str.join``): that order follows the hash seed, so it
    changes under ``PYTHONHASHSEED`` — exactly what flakes golden traces.
    Order-insensitive reductions over sets are fine and not flagged."""

    def flag(node, what: str):
        return rule.finding(
            model, node, f"{what} consumes a set in hash order"
        )

    for node in ast.walk(model.tree):
        scope = model.enclosing_scope(node)
        if isinstance(node, ast.For):
            if model.is_set_typed(node.iter, scope):
                yield flag(node.iter, "for loop")
        elif isinstance(node, (ast.ListComp, ast.DictComp)):
            kind = (
                "list comprehension"
                if isinstance(node, ast.ListComp)
                else "dict comprehension"
            )
            for gen in node.generators:
                if model.is_set_typed(gen.iter, scope):
                    yield flag(gen.iter, kind)
        elif isinstance(node, ast.Call):
            origin = model.resolve_call(node)
            if (
                origin in _ORDER_SENSITIVE_CALLS
                and node.args
                and model.is_set_typed(node.args[0], scope)
            ):
                yield flag(node, f"{origin.removeprefix('builtins.')}()")
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and model.is_set_typed(node.args[0], scope)
            ):
                yield flag(node, "str.join()")


@san_rule(
    "DET006",
    "id-identity",
    SEVERITY_WARNING,
    fix_hint="key on a stable identifier (node id, cookie, name) instead; "
    "id() values are allocation addresses and differ across runs and "
    "processes",
)
def check_id_identity(model: ModuleModel, rule: SanRule):
    """Builtin ``id()`` used outside a direct identity comparison: its
    value is an allocation address, so using it as a key, tag, or ordering
    input ties behaviour to the allocator — unreproducible across runs and
    meaningless across shard processes.  ``id(a) == id(b)`` (same-process
    identity, better spelled ``a is b``) is tolerated."""
    for call, origin in _calls(model):
        if origin != "builtins.id":
            continue
        parent = model.parents.get(call)
        if isinstance(parent, ast.Compare):
            continue
        yield rule.finding(
            model, call, "id() value escapes an identity comparison"
        )


@san_rule(
    "DET007",
    "hash-order",
    SEVERITY_WARNING,
    fix_hint="hash with hashlib (stable across processes) or sort on the "
    "value itself; builtin hash() of str/bytes changes with PYTHONHASHSEED",
)
def check_hash_order(model: ModuleModel, rule: SanRule):
    """Builtin ``hash()`` outside a ``__hash__`` definition: for str,
    bytes, and containers of them the result is salted per process
    (``PYTHONHASHSEED``), so bucketing, sort keys, or emitted values built
    on it differ between runs.  ``__hash__`` implementations are exempt —
    there the interpreter owns the contract."""
    for call, origin in _calls(model):
        if origin != "builtins.hash":
            continue
        enclosing = model.enclosing(
            call, (ast.FunctionDef, ast.AsyncFunctionDef)
        )
        if enclosing is not None and enclosing.name == "__hash__":
            continue
        yield rule.finding(
            model, call, "hash() is PYTHONHASHSEED-dependent"
        )


# --------------------------------------------------------------------- #
# Shared-state rules                                                    #
# --------------------------------------------------------------------- #


@san_rule(
    "RACE001",
    "global-mutation",
    SEVERITY_ERROR,
    fix_hint="pass the state in explicitly (constructor/parameter); a "
    "module global mutated at runtime is per-process state the sharded "
    "simulator will silently fork",
)
def check_global_mutation(model: ModuleModel, rule: SanRule):
    """A module-level mutable container mutated from inside a function or
    method: hidden global state.  Two engines in one process already share
    it accidentally; two shard processes each get a diverging copy.
    Import-time initialization (module-level statements) is exempt, as are
    locals shadowing the global name."""
    mutables = model.module_mutables
    if not mutables:
        return

    def target_name(node) -> str | None:
        """The module-global a mutation statement touches, if any."""
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
                and isinstance(func.value, ast.Name)
            ):
                return func.value.id
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    return target.value.id
                if isinstance(target, ast.Name) and isinstance(
                    node, (ast.AugAssign, ast.Assign)
                ):
                    return target.id
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    return target.value.id
        return None

    for node in ast.walk(model.tree):
        name = target_name(node)
        if name is None or name not in mutables:
            continue
        scope = model.enclosing(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if scope is None:
            continue  # import-time init on the module body
        plain_rebind = isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) for t in node.targets
        )
        if plain_rebind and not declares_global(scope, name):
            continue  # binds a local, not the global
        if is_local_name(scope, name):
            continue  # a local shadows the global name
        yield rule.finding(
            model,
            node,
            f"module-level mutable {name!r} mutated inside "
            f"{model.qualname(node)}()",
        )


@san_rule(
    "RACE002",
    "class-attr-aliasing",
    SEVERITY_ERROR,
    fix_hint="initialize the container per instance in __init__ (or use a "
    "dataclass field(default_factory=...)); a class-level container is one "
    "object shared by every instance",
)
def check_class_attr_aliasing(model: ModuleModel, rule: SanRule):
    """A method mutates ``self.x`` where ``x`` is a class-level mutable
    container and no method ever rebinds ``self.x``: every instance aliases
    the *class's* single container, so per-flow state bleeds across
    instances — the OpenState/OPP per-flow tables on the roadmap make this
    an instant corruption bug.  Classes that assign ``self.x = ...``
    somewhere are exempt (the literal is then just a default)."""
    for klass in ast.walk(model.tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        class_attrs: set[str] = set()
        for stmt in klass.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            else:
                continue
            if isinstance(target, ast.Name) and model.is_mutable_container(
                value
            ):
                class_attrs.add(target.id)
        if not class_attrs:
            continue
        methods = [
            stmt
            for stmt in klass.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        rebound_attrs: set[str] = set()
        for method in methods:
            self_name = _first_arg(method)
            if self_name is None:
                continue
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        attr = _self_attr(target, self_name)
                        if attr is not None:
                            rebound_attrs.add(attr)
        for method in methods:
            self_name = _first_arg(method)
            if self_name is None:
                continue
            for node in ast.walk(method):
                attr = _mutated_self_attr(node, self_name)
                if (
                    attr is not None
                    and attr in class_attrs
                    and attr not in rebound_attrs
                ):
                    yield rule.finding(
                        model,
                        node,
                        f"{klass.name}.{attr} is a class-level container "
                        f"mutated through {self_name!r} — shared by every "
                        f"instance",
                    )


def _first_arg(method) -> str | None:
    args = method.args
    ordered = [*args.posonlyargs, *args.args]
    return ordered[0].arg if ordered else None


def _self_attr(node, self_name: str) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def _mutated_self_attr(node, self_name: str) -> str | None:
    """The attribute of ``self`` this node mutates in place, if any."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            return _self_attr(func.value, self_name)
    elif isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Subscript):
                return _self_attr(target.value, self_name)
            if isinstance(node, ast.AugAssign):
                return _self_attr(target, self_name)
    return None


@san_rule(
    "RACE003",
    "mutable-default",
    SEVERITY_ERROR,
    fix_hint="default to None (or a tuple/frozenset) and create the "
    "container inside the function body",
)
def check_mutable_default(model: ModuleModel, rule: SanRule):
    """A mutable default argument is evaluated once at def time and shared
    by every call — state leaks between calls within a process and forks
    between shard processes.  Immutable defaults (None, tuples,
    frozensets) are fine."""
    for node in ast.walk(model.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = [
            *node.args.defaults,
            *(d for d in node.args.kw_defaults if d is not None),
        ]
        for default in defaults:
            if model.is_mutable_container(default):
                yield rule.finding(
                    model,
                    default,
                    f"mutable default argument on {node.name}() is shared "
                    f"across calls",
                )
