"""Interprocedural rules: effect hygiene (EFF) and ownership (SHARD).

Where the per-site ``DET``/``RACE`` rules judge one line, these judge a
*function against the whole program*: its transitive effect set (from
:mod:`repro.analysis.static.effects`) against the ownership manifest
(:mod:`repro.analysis.static.shardmodel`).  They share the sanitizer's
finding/suppression/baseline machinery — ``# repro: allow[SHARD001]``
works on the flagged line, and ``shardcheck-baseline.json`` permits
existing debt without letting it grow.

Rule families:

``EFF001`` undeclared-global-effect
    a public API transitively mutates a module global that is not a
    sanctioned registry — hidden process state a sharded run duplicates.
``EFF002`` transitive-raw-rng
    a public API transitively reaches the process-global RNG; per-site
    DET001 catches the draw, this catches every entry point it leaks to.
``EFF003`` effect-summary-drift
    a public API's computed effect set differs from the committed
    ``shardcheck-effects.json`` — the sharding contract changed without
    being re-declared.
``SHARD001`` crossing-state-mutation
    shard-crossing state mutated outside its owning class and outside
    the designated channel API — an unserialized cross-shard write.
``SHARD002`` raw-entropy-in-shard
    a shard-owned class method transitively reaches a raw RNG or wall
    clock — per-shard code must draw from ``derive_seed``-derived
    generators or the run diverges across workers.
``SHARD003`` crossing-set-iteration
    hash-order iteration over a set owned by shard-crossing state —
    replay order would differ between processes.
``SHARD004`` frozen-state-mutation
    frozen (build-once, replicate-everywhere) state mutated outside its
    declared builders — replicas silently diverge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.analysis.static.callgraph import (
    FunctionInfo,
    ProgramModel,
    builtin_kind,
    infer_expr_type,
    walk_scope,
)
from repro.analysis.static.effects import EffectTable
from repro.analysis.static.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    SanFinding,
    SanRule,
)
from repro.analysis.static.shardmodel import (
    FROZEN,
    SHARD_CROSSING,
    SHARD_OWNED,
    ShardManifest,
)


@dataclass
class ShardContext:
    """Everything an interprocedural rule may ask for."""

    program: ProgramModel
    manifest: ShardManifest
    table: EffectTable
    #: fqn -> sorted atoms from the committed effect summary (None when
    #: no summary is committed yet — EFF003 stays silent then).
    committed_effects: dict[str, list[str]] | None = None


#: rule id -> SanRule for the interprocedural pass, in registration order.
# repro: allow[RACE001] import-time rule registry, mutated only by decorators
IPA_RULES: dict[str, SanRule] = {}


def ipa_rule(
    rule_id: str, name: str, severity: str, fix_hint: str = ""
) -> Callable:
    """Register an interprocedural check.

    The decorated generator receives ``(ctx, rule)`` — a
    :class:`ShardContext` and its own :class:`SanRule` — and yields
    findings via ``rule.finding(fn.model, node, ...)``.
    """

    def register(func):
        if rule_id in IPA_RULES:
            raise ValueError(f"duplicate interprocedural rule id {rule_id!r}")
        # repro: allow[RACE001] import-time rule registry
        IPA_RULES[rule_id] = SanRule(
            rule_id=rule_id,
            name=name,
            severity=severity,
            doc=(func.__doc__ or "").strip(),
            fix_hint=fix_hint,
            func=func,
        )
        return func

    return register


# --------------------------------------------------------------------- #
# Shared helpers                                                        #
# --------------------------------------------------------------------- #


def _split_attr_atom(atom: str) -> tuple[str, str] | None:
    """``attr:{ClassFQN}.{attr}`` -> (ClassFQN, attr)."""
    if not atom.startswith("attr:"):
        return None
    dotted = atom[len("attr:"):]
    cls, _, attr = dotted.rpartition(".")
    return (cls, attr) if cls else None


def _is_method_of(fn: FunctionInfo, class_fqn: str) -> bool:
    """Is *fn* a method of *class_fqn* or of one of its subclasses?
    (Walking the method's own MRO covers both: a subclass method's MRO
    contains the base.)"""
    if fn.cls is None:
        return False
    return any(cls.fqn == class_fqn for cls in fn.cls._mro_walk())


def _functions(ctx: ShardContext) -> Iterator[FunctionInfo]:
    yield from ctx.program.functions.values()


def _witness_chain(
    ctx: ShardContext, start: str, atoms: frozenset[str], limit: int = 6
) -> str:
    """A shortest call chain from *start* to a function *directly*
    carrying one of *atoms* — the "why" a transitive finding needs."""
    from collections import deque

    parents: dict[str, str | None] = {start: None}
    queue = deque([start])
    hit: str | None = None
    if ctx.table.direct_atoms(start) & atoms:
        hit = start
    while queue and hit is None:
        current = queue.popleft()
        for edge in ctx.program.edges.get(current, ()):
            target = edge.target
            if (
                target is None
                or target in parents
                or target not in ctx.program.functions
            ):
                continue
            parents[target] = current
            if ctx.table.direct_atoms(target) & atoms:
                hit = target
                break
            queue.append(target)
    if hit is None:
        return ""
    chain: list[str] = []
    node: str | None = hit
    while node is not None:
        chain.append(node)
        node = parents[node]
    chain.reverse()
    short = [part.split(".")[-1] for part in chain[:-1]]
    short.append(".".join(chain[-1].split(".")[-2:]))
    if len(short) > limit:
        short = short[:2] + ["…"] + short[-(limit - 3):]
    return " -> ".join(short)


# --------------------------------------------------------------------- #
# EFF: effect hygiene on the public surface                             #
# --------------------------------------------------------------------- #


@ipa_rule(
    "EFF001",
    "undeclared-global-effect",
    SEVERITY_ERROR,
    fix_hint="move the state onto an owned object, or declare the global "
    "in the manifest's sanctioned_globals with a why",
)
def check_undeclared_global_effect(
    ctx: ShardContext, rule: SanRule
) -> Iterator[SanFinding]:
    """A public API transitively mutates an unsanctioned module global.

    Module globals are per-process: after sharding, each worker mutates
    its own copy and the copies silently diverge.  Registries that are
    only filled at import time are declared in the manifest instead.
    """
    for fn in _functions(ctx):
        if not fn.is_public:
            continue
        bad = sorted(
            atom
            for atom in ctx.table.effects_of(fn.fqn)
            if atom.startswith("global:")
            and not ctx.manifest.is_sanctioned_global(
                *atom[len("global:"):].rsplit(".", 1)
            )
        )
        if bad:
            chain = _witness_chain(ctx, fn.fqn, frozenset(bad))
            via = f" (via {chain})" if chain else ""
            yield rule.finding(
                fn.model,
                fn.node,
                f"public API {fn.qualname} mutates module global(s) "
                f"{', '.join(a[len('global:'):] for a in bad)}{via}",
            )


@ipa_rule(
    "EFF002",
    "transitive-raw-rng",
    SEVERITY_ERROR,
    fix_hint="thread a seeded generator (repro.core.determinism."
    "derive_rng) down the call chain instead",
)
def check_transitive_raw_rng(
    ctx: ShardContext, rule: SanRule
) -> Iterator[SanFinding]:
    """A public API transitively reaches the process-global RNG.

    DET001 flags the draw itself; this names every public entry point
    whose behaviour it contaminates, which is the list a sharding
    refactor must re-seed.
    """
    atoms = frozenset({"rng:raw"})
    for fn in _functions(ctx):
        if not fn.is_public:
            continue
        if "rng:raw" in ctx.table.effects_of(fn.fqn):
            chain = _witness_chain(ctx, fn.fqn, atoms)
            via = f" via {chain}" if chain else ""
            yield rule.finding(
                fn.model,
                fn.node,
                f"public API {fn.qualname} reaches the process-global "
                f"RNG{via}",
            )


@ipa_rule(
    "EFF003",
    "effect-summary-drift",
    SEVERITY_WARNING,
    fix_hint="review the new effects, then regenerate the summary with: "
    "smartsouth shardcheck --write-effects",
)
def check_effect_summary_drift(
    ctx: ShardContext, rule: SanRule
) -> Iterator[SanFinding]:
    """A public API's effect set drifted from the committed summary.

    ``shardcheck-effects.json`` is the declared sharding contract; a
    drift means an API gained or lost externally visible behaviour
    without the contract being re-reviewed.  Only APIs present in the
    committed summary are compared, so adding a function is not noise.
    """
    if ctx.committed_effects is None:
        return
    computed = ctx.table.public_summary()
    for fqn, declared in sorted(ctx.committed_effects.items()):
        actual = computed.get(fqn)
        if actual is None or actual == sorted(declared):
            continue
        fn = ctx.program.functions[fqn]
        gained = sorted(set(actual) - set(declared))
        lost = sorted(set(declared) - set(actual))
        parts = []
        if gained:
            parts.append("+" + ", +".join(gained))
        if lost:
            parts.append("-" + ", -".join(lost))
        yield rule.finding(
            fn.model,
            fn.node,
            f"effect summary drift on {fn.qualname}: {'; '.join(parts)}",
        )


# --------------------------------------------------------------------- #
# SHARD: ownership                                                      #
# --------------------------------------------------------------------- #


@ipa_rule(
    "SHARD001",
    "crossing-state-mutation",
    SEVERITY_ERROR,
    fix_hint="go through the owning class's channel API (see "
    "shardmodel.default_manifest) so the write can become a message",
)
def check_crossing_state_mutation(
    ctx: ShardContext, rule: SanRule
) -> Iterator[SanFinding]:
    """Shard-crossing state is mutated outside its owner and channel API.

    Every such write is an unserialized cross-shard side effect: correct
    in-process today, lost or racy the day the object sits in another
    worker.  Mutations inside the owning class (or a subclass) are its
    own business, and the shard-crossing classes may mutate *each other*
    — together they are the shared fabric that implements the boundary
    (the simulator writing a link's delivery counters is the boundary
    working, not code reaching across it).  Everything else must call
    the channel API.
    """
    for fn in _functions(ctx):
        if ctx.manifest.channel_atom(fn.fqn) is not None:
            continue  # the designated API itself
        if fn.cls is not None and (
            ctx.manifest.ownership_of(fn.cls.fqn) == SHARD_CROSSING
        ):
            continue  # fabric-internal: the boundary implementing itself
        for site in ctx.table.direct.get(fn.fqn, ()):
            split = _split_attr_atom(site.atom)
            if split is None:
                continue
            cls_fqn, attr = split
            if ctx.manifest.ownership_of(cls_fqn) != SHARD_CROSSING:
                continue
            if _is_method_of(fn, cls_fqn):
                continue
            cls_name = cls_fqn.split(".")[-1]
            yield rule.finding(
                fn.model,
                site.node,
                f"{fn.qualname} mutates shard-crossing state "
                f"{cls_name}.{attr} directly",
            )


@ipa_rule(
    "SHARD002",
    "raw-entropy-in-shard",
    SEVERITY_ERROR,
    fix_hint="derive the shard's generator with derive_seed/derive_rng "
    "from the run's master seed; take time from the event loop",
)
def check_raw_entropy_in_shard(
    ctx: ShardContext, rule: SanRule
) -> Iterator[SanFinding]:
    """A shard-owned class transitively reaches raw entropy or the wall
    clock.

    Shard-owned code runs replicated across workers: any draw from the
    process-global RNG or a wall clock makes replicas diverge.  Seeded
    generators (``rng:seeded``) are fine — their seeds are derived from
    the run's master seed.
    """
    atoms = frozenset({"rng:raw", "clock:wall"})
    for fn in _functions(ctx):
        if fn.cls is None:
            continue
        owner = ctx.manifest.ownership_of(fn.cls.fqn)
        if owner != SHARD_OWNED:
            continue
        reached = atoms & ctx.table.effects_of(fn.fqn)
        if reached:
            chain = _witness_chain(ctx, fn.fqn, atoms)
            via = f" via {chain}" if chain else ""
            yield rule.finding(
                fn.model,
                fn.node,
                f"shard-owned {fn.qualname} reaches "
                f"{', '.join(sorted(reached))}{via}",
            )


@ipa_rule(
    "SHARD003",
    "crossing-set-iteration",
    SEVERITY_WARNING,
    fix_hint="iterate sorted(...) so every shard replays the collection "
    "in the same order",
)
def check_crossing_set_iteration(
    ctx: ShardContext, rule: SanRule
) -> Iterator[SanFinding]:
    """Hash-order iteration over a set owned by shard-crossing state.

    The per-site DET rules catch sets that *escape* a function; this one
    catches iteration order itself when the set lives on shard-crossing
    state, because two workers replaying the same events must visit
    members in the same order for their traces to match.
    """
    for fn in _functions(ctx):
        for node in walk_scope(fn.node):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for expr in iters:
                finding = _crossing_set_iteration_finding(
                    ctx, rule, fn, expr
                )
                if finding is not None:
                    yield finding


def _crossing_set_iteration_finding(
    ctx: ShardContext,
    rule: SanRule,
    fn: FunctionInfo,
    expr: ast.expr,
) -> SanFinding | None:
    if not isinstance(expr, ast.Attribute):
        return None
    attr_type = infer_expr_type(ctx.program, fn, expr)
    # builtin_kind covers both `members: set[int]` (ContainerType) and a
    # bare `members: set` annotation (the plain kind string).
    if builtin_kind(attr_type) not in ("set", "frozenset"):
        return None
    receiver = infer_expr_type(ctx.program, fn, expr.value)
    cls = ctx.program.class_of(receiver)
    if cls is None or ctx.manifest.ownership_of(cls.fqn) != SHARD_CROSSING:
        return None
    return rule.finding(
        fn.model,
        expr,
        f"{fn.qualname} iterates shard-crossing set "
        f"{cls.name}.{expr.attr} in hash order",
    )


@ipa_rule(
    "SHARD004",
    "frozen-state-mutation",
    SEVERITY_ERROR,
    fix_hint="mutate only inside the declared builders (manifest "
    "builders entry), or rebuild the object instead of patching it",
)
def check_frozen_state_mutation(
    ctx: ShardContext, rule: SanRule
) -> Iterator[SanFinding]:
    """Frozen state is mutated outside its declared builders.

    Frozen objects (the topology, compiled programs) are built once and
    replicated into every shard; a post-build mutation changes one
    replica and not the others.  ``__init__`` of a frozen class and the
    manifest's ``builders`` are the only sanctioned writers.
    """
    for fn in _functions(ctx):
        if ctx.manifest.is_builder(fn.fqn):
            continue
        for site in ctx.table.direct.get(fn.fqn, ()):
            split = _split_attr_atom(site.atom)
            if split is None:
                continue
            cls_fqn, attr = split
            if ctx.manifest.ownership_of(cls_fqn) != FROZEN:
                continue
            cls_name = cls_fqn.split(".")[-1]
            yield rule.finding(
                fn.model,
                site.node,
                f"{fn.qualname} mutates frozen state "
                f"{cls_name}.{attr} outside the build phase",
            )


__all__ = ["IPA_RULES", "ShardContext", "ipa_rule"]
