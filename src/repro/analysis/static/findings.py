"""Findings, rule metadata, and the report for the source sanitizer.

Mirrors the shape of the flow-rule lint layer (:mod:`repro.analysis.lint`):
stable rule ids (``DET001`` …, ``RACE001`` …), a severity per rule, a fix
hint on every finding, and one report object that renders to text or JSON.
The difference is the subject — these findings point at *Python source
lines* of the reproduction itself, so each carries a path, line, column,
enclosing scope, and the stripped source line (the baseline key).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"
_SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_INFO)


@dataclass(frozen=True)
class SanFinding:
    """One determinism / shared-state diagnosis at a source location."""

    rule: str
    name: str
    severity: str
    message: str
    path: str
    line: int
    col: int
    #: Dotted enclosing scope (``<module>``, ``ClassName.method``, …).
    scope: str
    #: The stripped source line — part of the baseline key, so baselines
    #: survive line-number drift.
    code: str
    fix_hint: str = ""
    #: Silenced by a ``# repro: allow[RULE]`` comment at the site.
    suppressed: bool = False
    #: Matched an entry of the committed baseline file.
    baselined: bool = False

    @property
    def active(self) -> bool:
        """Does this finding fail the gate (new: not suppressed/baselined)?"""
        return not (self.suppressed or self.baselined)

    def key(self) -> tuple[str, str, str, str]:
        """The baseline identity: (rule, path, scope, stripped line)."""
        return (self.rule, self.path, self.scope, self.code)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "scope": self.scope,
            "code": self.code,
            "fix_hint": self.fix_hint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    def format(self) -> str:
        status = ""
        if self.suppressed:
            status = " (suppressed)"
        elif self.baselined:
            status = " (baselined)"
        line = (
            f"{self.severity}[{self.rule}] {self.path}:{self.line}:{self.col}"
            f" in {self.scope}{status}: {self.message}"
        )
        if self.code:
            line += f"\n    {self.code}"
        if self.fix_hint:
            line += f"\n    hint: {self.fix_hint}"
        return line


@dataclass(frozen=True)
class SanRule:
    """A registered source check: metadata plus the generator running it."""

    rule_id: str
    name: str
    severity: str
    doc: str
    fix_hint: str
    func: Callable[..., Iterator[SanFinding]]

    def finding(
        self,
        model,
        node,
        message: str,
        fix_hint: str | None = None,
    ) -> SanFinding:
        """Build a finding for AST *node* of *model* with this rule's ids."""
        line = getattr(node, "lineno", 0)
        return SanFinding(
            rule=self.rule_id,
            name=self.name,
            severity=self.severity,
            message=message,
            path=model.relpath,
            line=line,
            col=getattr(node, "col_offset", 0),
            scope=model.qualname(node),
            code=model.line(line),
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


#: rule id -> SanRule, in registration order.
# repro: allow[RACE001] import-time rule registry, mutated only by decorators
SAN_RULES: dict[str, SanRule] = {}


def san_rule(
    rule_id: str, name: str, severity: str, fix_hint: str = ""
) -> Callable:
    """Register a sanitizer check (the ``lint_rule`` pattern).

    The decorated generator receives ``(model, rule)`` — a parsed
    :class:`~repro.analysis.static.walker.ModuleModel` and its own
    :class:`SanRule` — and yields findings, usually via ``rule.finding``.
    ``DET``/``RACE`` ids are reserved for the built-ins.
    """
    if severity not in _SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def register(func):
        if rule_id in SAN_RULES:
            raise ValueError(f"duplicate sanitizer rule id {rule_id!r}")
        # repro: allow[RACE001] import-time rule registry
        SAN_RULES[rule_id] = SanRule(
            rule_id=rule_id,
            name=name,
            severity=severity,
            doc=(func.__doc__ or "").strip(),
            fix_hint=fix_hint,
            func=func,
        )
        return func

    return register


@dataclass
class SanReport:
    """All findings of one run plus the gate verdict."""

    findings: list[SanFinding]
    files: int
    rules_run: list[str]
    root: str = ""
    baseline_path: str | None = None
    #: Baseline entries no finding matched (candidates for pruning).
    stale_baseline: list[dict] = field(default_factory=list)
    #: finding relpath -> repo-relative filesystem path, for output
    #: formats that must anchor on real files (GitHub annotations).
    path_map: dict[str, str] = field(default_factory=dict)

    @property
    def active(self) -> list[SanFinding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> list[SanFinding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> list[SanFinding]:
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        """1 = new findings (the gate fails), 0 = clean.

        Unlike the flow-rule lint there is no warnings-only exit: CI's
        contract is "no *new* findings of any severity vs the baseline".
        """
        return 1 if self.active else 0

    def summary(self) -> str:
        return (
            f"sancheck: {len(self.active)} new, "
            f"{len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed finding(s) "
            f"across {self.files} file(s)"
        )

    def to_json(self) -> dict:
        return {
            "root": self.root,
            "baseline": self.baseline_path,
            "summary": {
                "new": len(self.active),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "files": self.files,
                "rules_run": self.rules_run,
            },
            "stale_baseline": self.stale_baseline,
            "findings": [f.to_dict() for f in self.findings],
        }

    def format_text(self, show_silenced: bool = False) -> str:
        order = {SEVERITY_ERROR: 0, SEVERITY_WARNING: 1, SEVERITY_INFO: 2}
        lines = []
        shown = self.findings if show_silenced else self.active
        for finding in sorted(
            shown, key=lambda f: (order[f.severity], f.rule, f.path, f.line)
        ):
            lines.append(finding.format())
        for entry in self.stale_baseline:
            lines.append(
                f"note: stale baseline entry {entry['rule']} "
                f"{entry['path']} ({entry['scope']}) — prune it"
            )
        lines.append(self.summary())
        return "\n".join(lines)

    def format_github(self) -> str:
        """Active findings as GitHub workflow commands, one per line:
        ``::error file=…,line=…,col=…,title=RULE::message`` — the runner
        renders these inline on the PR diff."""
        level = {
            SEVERITY_ERROR: "error",
            SEVERITY_WARNING: "warning",
            SEVERITY_INFO: "notice",
        }
        lines = []
        for f in sorted(
            self.active, key=lambda f: (f.path, f.line, f.rule)
        ):
            path = self.path_map.get(f.path, f.path)
            message = f.message.replace("%", "%25").replace(
                "\r", "%0D"
            ).replace("\n", "%0A")
            lines.append(
                f"::{level[f.severity]} file={path},line={f.line},"
                f"col={f.col},title={f.rule}::{message}"
            )
        return "\n".join(lines)


__all__ = [
    "SAN_RULES",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "SanFinding",
    "SanReport",
    "SanRule",
    "replace",
    "san_rule",
]
