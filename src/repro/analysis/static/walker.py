"""AST walking with the scope/alias tracking the sanitizer rules share.

One :class:`ModuleModel` per file holds everything a rule may ask for,
computed once:

* a parent map and scope qualnames (``ClassName.method``), so findings are
  addressable and baselines survive line drift;
* import alias resolution — ``import random as r`` / ``from random import
  random as rnd`` both resolve calls back to ``random.random``, and builtin
  calls (``id``, ``hash``, ``set`` …) resolve to ``builtins.*`` unless the
  module rebinds the name;
* per-scope *set-typedness*: names assigned from set literals, set
  comprehensions, ``set()``/``frozenset()`` calls, or set-algebra binops —
  the basis for the unordered-iteration rule;
* module-level and class-level *mutable bindings* (list/dict/set literals
  and their constructors) — the basis for the shared-state rules;
* suppression comments: ``# repro: allow[DET003] reason`` on the finding's
  line (or alone on the line above) silences that rule at that site.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: Modules whose members the resolver tracks.
_TRACKED_MODULES = (
    "random",
    "time",
    "datetime",
    "os",
    "uuid",
    "secrets",
    "json",
    "collections",
)

#: Builtins the rules care about.
_TRACKED_BUILTINS = frozenset(
    {
        "id",
        "hash",
        "set",
        "frozenset",
        "list",
        "tuple",
        "dict",
        "iter",
        "enumerate",
        "sorted",
    }
)

#: ``from X import Y`` members that act like classes/submodules: attribute
#: calls on them resolve one level deeper (``datetime.now`` →
#: ``datetime.datetime.now``).
_CLASSLIKE_IMPORTS = frozenset(
    {"datetime.datetime", "datetime.date", "datetime.time"}
)

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\]"
)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

#: Method names that mutate a list/dict/set/deque in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)

#: Constructor callables producing mutable containers.
_MUTABLE_CTORS = frozenset(
    {
        "builtins.set",
        "builtins.list",
        "builtins.dict",
        "collections.defaultdict",
        "collections.deque",
        "collections.Counter",
        "collections.OrderedDict",
    }
)


@dataclass
class ModuleModel:
    """One parsed source file plus every shared analysis over it."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: physical line -> rule ids allowed there.
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: child AST node -> parent AST node.
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: local name -> module dotted path ("random", "os.path", ...).
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> imported member dotted path ("random.random", ...).
    member_aliases: dict[str, str] = field(default_factory=dict)
    #: names the module rebinds somewhere (param, assign, def, class).
    rebound: set[str] = field(default_factory=set)
    #: scope node (or tree for module) -> names proven set-typed there.
    set_names: dict[ast.AST, set[str]] = field(default_factory=dict)
    #: module-level name -> the Assign/AnnAssign node binding it mutable.
    module_mutables: dict[str, ast.stmt] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Source / location helpers                                          #
    # ------------------------------------------------------------------ #

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def qualname(self, node: ast.AST) -> str:
        parts: list[str] = []
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, _SCOPE_NODES):
                parts.append(current.name)
            current = self.parents.get(current)
        return ".".join(reversed(parts)) or "<module>"

    def enclosing(self, node: ast.AST, kinds) -> ast.AST | None:
        """The nearest ancestor of *node* among *kinds* (or None)."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, kinds):
                return current
            current = self.parents.get(current)
        return None

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        """The function/class scope holding *node* (the tree if module)."""
        return self.enclosing(node, _SCOPE_NODES) or self.tree

    def is_suppressed(self, lineno: int, rule_id: str) -> bool:
        """Is *rule_id* allowed at *lineno* (same line or lone comment above)?"""
        allowed = self.suppressions.get(lineno)
        if allowed is not None and rule_id in allowed:
            return True
        above = self.suppressions.get(lineno - 1)
        if above is not None and rule_id in above:
            return self.line(lineno - 1).startswith("#")
        return False

    # ------------------------------------------------------------------ #
    # Name resolution                                                    #
    # ------------------------------------------------------------------ #

    def resolve_call(self, call: ast.Call) -> str | None:
        """The dotted origin of a call, or None when unresolvable.

        ``random.random()`` → ``"random.random"`` (through any import
        alias); ``datetime.datetime.now()`` → ``"datetime.datetime.now"``;
        ``id(x)`` → ``"builtins.id"`` unless the module rebinds ``id``.
        Method calls on arbitrary objects (``rng.random()``) resolve to
        None: the walker does not guess receiver types.
        """
        return self.resolve_name(call.func)

    def resolve_name(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            if node.id in self.member_aliases:
                return self.member_aliases[node.id]
            if node.id in self.module_aliases:
                return self.module_aliases[node.id]
            if node.id in _TRACKED_BUILTINS and node.id not in self.rebound:
                return f"builtins.{node.id}"
            return None
        if isinstance(node, ast.Attribute):
            base = self.resolve_name(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    # ------------------------------------------------------------------ #
    # Type-shape helpers                                                 #
    # ------------------------------------------------------------------ #

    def is_set_typed(self, node: ast.expr, scope: ast.AST) -> bool:
        """Is *node* statically known to evaluate to a set/frozenset?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            origin = self.resolve_call(node)
            return origin in ("builtins.set", "builtins.frozenset")
        if isinstance(node, ast.Name):
            return node.id in self.set_names.get(scope, ())
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_typed(node.left, scope) or self.is_set_typed(
                node.right, scope
            )
        return False

    def is_mutable_container(self, node: ast.expr) -> bool:
        """Is *node* a mutable-container literal or constructor call?"""
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            return self.resolve_call(node) in _MUTABLE_CTORS
        return False


# --------------------------------------------------------------------- #
# Model construction                                                    #
# --------------------------------------------------------------------- #


def _collect_suppressions(lines: list[str]) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            out[lineno] = {part.strip() for part in match.group(1).split(",")}
    return out


def _collect_imports(model: ModuleModel) -> None:
    for node in ast.walk(model.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top in _TRACKED_MODULES:
                    model.module_aliases[alias.asname or top] = (
                        alias.name if alias.asname else top
                    )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            top = node.module.split(".")[0]
            if top not in _TRACKED_MODULES:
                continue
            for alias in node.names:
                dotted = f"{node.module}.{alias.name}"
                local = alias.asname or alias.name
                if dotted in _CLASSLIKE_IMPORTS:
                    # Attribute calls on the class resolve one level deeper.
                    model.module_aliases[local] = dotted
                else:
                    model.member_aliases[local] = dotted


def _collect_rebound(model: ModuleModel) -> None:
    for node in ast.walk(model.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            model.rebound.add(node.name)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (
                    *args.posonlyargs,
                    *args.args,
                    *args.kwonlyargs,
                    *filter(None, (args.vararg, args.kwarg)),
                ):
                    model.rebound.add(arg.arg)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                for leaf in ast.walk(target):
                    # Only Store-context names rebind; Load-context names
                    # inside a subscript/attribute target (`d[id(x)] = v`)
                    # are uses, not bindings.
                    if isinstance(leaf, ast.Name) and isinstance(
                        leaf.ctx, ast.Store
                    ):
                        model.rebound.add(leaf.id)


def _scope_statements(scope: ast.AST) -> Iterator[ast.stmt]:
    """Statements belonging to *scope* itself (not to nested scopes)."""
    stack = list(getattr(scope, "body", []))
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, _SCOPE_NODES):
            continue
        for child_field in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, child_field, []))
        for handler in getattr(stmt, "handlers", []):
            stack.extend(handler.body)


def _collect_set_names(model: ModuleModel) -> None:
    scopes: list[ast.AST] = [model.tree] + [
        node for node in ast.walk(model.tree) if isinstance(node, _SCOPE_NODES)
    ]
    for scope in scopes:
        names: set[str] = set()
        poisoned: set[str] = set()
        # Two passes so `s = set(); s = []` demotes regardless of order.
        for stmt in _scope_statements(scope):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target = stmt.target
            else:
                continue
            if not isinstance(target, ast.Name):
                continue
            value = stmt.value
            if model.is_set_typed(value, scope):
                names.add(target.id)
            else:
                poisoned.add(target.id)
        model.set_names[scope] = names - poisoned


def _collect_module_mutables(model: ModuleModel) -> None:
    for stmt in model.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        else:
            continue
        if isinstance(target, ast.Name) and model.is_mutable_container(value):
            model.module_mutables[target.id] = stmt


def build_module(path: Path, rel_base: Path) -> ModuleModel:
    """Parse *path* and precompute every shared analysis."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    model = ModuleModel(
        path=path,
        relpath=path.relative_to(rel_base).as_posix(),
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )
    model.suppressions = _collect_suppressions(model.lines)
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            model.parents[child] = parent
    _collect_imports(model)
    _collect_rebound(model)
    _collect_set_names(model)
    _collect_module_mutables(model)
    return model


def iter_py_files(root: Path) -> Iterator[Path]:
    """Python files under *root* (or *root* itself), stably ordered."""
    if root.is_file():
        yield root
        return
    yield from sorted(root.rglob("*.py"))


def build_models(root: Path, rel_base: Path | None = None) -> list[ModuleModel]:
    """Parse every Python file under *root* into a :class:`ModuleModel`.

    *rel_base* anchors the relpaths findings and baselines use; it defaults
    to *root*'s parent so a scan of ``src/repro`` reports ``repro/...``.
    """
    root = root.resolve()
    base = (rel_base or (root.parent if root.is_dir() else root.parent)).resolve()
    return [build_module(path, base) for path in iter_py_files(root)]


def is_local_name(scope: ast.AST, name: str) -> bool:
    """Does function *scope* bind *name* locally (param or plain assign),
    without declaring it global?"""
    if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for stmt in _scope_statements(scope):
        if isinstance(stmt, ast.Global) and name in stmt.names:
            return False
    args = scope.args
    for arg in (
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *filter(None, (args.vararg, args.kwarg)),
    ):
        if arg.arg == name:
            return True
    for stmt in _scope_statements(scope):
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return True
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(stmt.target):
                if isinstance(leaf, ast.Name) and leaf.id == name:
                    return True
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for leaf in ast.walk(item.optional_vars):
                        if isinstance(leaf, ast.Name) and leaf.id == name:
                            return True
    return False


def declares_global(scope: ast.AST, name: str) -> bool:
    if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    return any(
        isinstance(stmt, ast.Global) and name in stmt.names
        for stmt in _scope_statements(scope)
    )


def function_scopes(model: ModuleModel) -> Iterable[ast.AST]:
    return [
        node
        for node in ast.walk(model.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
