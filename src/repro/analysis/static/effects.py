"""Per-function effect inference over the call graph, to a fixpoint.

Each function gets a set of *effect atoms* — the externally visible things
running it may do:

``global:{module}.{NAME}``
    rebinds or mutates a module-level global;
``attr:{ClassFQN}.{attr}``
    mutates instance state of that class (assignment, augmented
    assignment, ``del``, or an in-place mutator call on the attribute);
``param:{name}``
    mutates an argument in place (a caller-visible aliasing effect —
    recorded, but *not* propagated, because the analyzer does not track
    which object a caller passed);
``rng:raw`` / ``rng:seeded`` / ``clock:wall``
    nondeterminism sources, raw or through the blessed
    :mod:`repro.core.determinism` seams;
``channel:send`` / ``channel:recv`` / ``channel:admin`` / ``event-queue``
  / ``epoch:advance`` / ``link:admin`` / ``trace:append``
    sanctioned shard-boundary operations, substituted by the manifest.

Direct effects come from each function's own AST (same scope discipline
as the call-graph builder: nested defs excluded, lambdas included), then
propagate caller-ward over the resolved call edges until nothing changes.
Two kinds of edges are *masked* by the ownership manifest
(:mod:`repro.analysis.static.shardmodel`) instead of propagated raw:

* a call into the **channel API** contributes only its clean atom
  (``channel:send`` …), not the channel's internal queue mutations —
  that is exactly what "sanctioned boundary" means;
* a call into a **provider** (``seeded_rng`` …) contributes the
  provider's declared atom, hiding its ``random.Random`` internals.

Callback edges (a function reference passed as an argument) propagate
like calls: handing a mutator to ``Simulator.schedule`` gives the caller
the mutator's effects, which is the sound assumption for hooks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.static.callgraph import (
    RESOLVED,
    FunctionInfo,
    ProgramModel,
    infer_expr_type,
    walk_scope,
)
from repro.analysis.static.rules import _CLOCK_ORIGINS, _GLOBAL_RNG_FUNCS
from repro.analysis.static.shardmodel import ShardManifest
from repro.analysis.static.walker import (
    MUTATOR_METHODS,
    declares_global,
    is_local_name,
)

#: Atoms that never propagate to callers: parameter mutation is visible
#: to the *direct* caller only through the object it passed, which the
#: analyzer does not track interprocedurally.
_NON_PROPAGATING_PREFIX = "param:"

#: RNG constructor origins: building an unseeded generator is a raw draw.
_RAW_RNG_CTORS = frozenset({"random.Random", "random.SystemRandom"})


@dataclass
class EffectSite:
    """One direct effect with its source location (rules anchor here)."""

    atom: str
    node: ast.AST

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class EffectTable:
    """Direct and transitive effects for every function in the program."""

    program: ProgramModel
    manifest: ShardManifest
    #: fn fqn -> direct effect sites, in source order.
    direct: dict[str, list[EffectSite]] = field(default_factory=dict)
    #: fn fqn -> full transitive atom set (fixpoint over the call graph).
    transitive: dict[str, set[str]] = field(default_factory=dict)

    def effects_of(self, fqn: str) -> set[str]:
        return self.transitive.get(fqn, set())

    def direct_atoms(self, fqn: str) -> set[str]:
        return {site.atom for site in self.direct.get(fqn, [])}

    def public_summary(self) -> dict[str, list[str]]:
        """fqn -> sorted atoms, for every public API function."""
        return {
            fqn: sorted(self.transitive.get(fqn, ()))
            for fqn, fn in sorted(self.program.functions.items())
            if fn.is_public
        }


# --------------------------------------------------------------------- #
# Direct effects                                                        #
# --------------------------------------------------------------------- #


def _param_names(fn: FunctionInfo) -> set[str]:
    args = fn.node.args
    return {
        arg.arg
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        )
    }


def _receiver_atom(
    program: ProgramModel,
    fn: FunctionInfo,
    target: ast.expr,
    params: set[str],
) -> str | None:
    """The effect atom for a mutation whose target expression is *target*.

    ``self.x...`` in a method → ``attr:`` on the owning class; a typed
    receiver (``link.queue.append``) → ``attr:`` on the receiver's class;
    a bare parameter → ``param:``; a module global → ``global:``.
    """
    if isinstance(target, ast.Attribute):
        base = target.value
        if (
            isinstance(base, ast.Name)
            and base.id in ("self", "cls")
            and fn.cls is not None
        ):
            return f"attr:{fn.cls.fqn}.{target.attr}"
        receiver = infer_expr_type(program, fn, base)
        cls = program.class_of(receiver)
        if cls is not None:
            return f"attr:{cls.fqn}.{target.attr}"
        if isinstance(base, ast.Name) and base.id in params:
            return f"param:{base.id}"
        return None
    if isinstance(target, ast.Subscript):
        return _receiver_atom(program, fn, _strip_subscripts(target), params)
    if isinstance(target, ast.Name):
        name = target.id
        module = program.modules[fn.module]
        if declares_global(fn.node, name) and name in module.global_names:
            return f"global:{fn.module}.{name}"
        if name in params:
            return f"param:{name}"
    return None


def _strip_subscripts(node: ast.expr) -> ast.expr:
    """``d[k]`` → ``d``; ``self.d[k]`` → ``self.d`` (one container layer:
    mutating an element of an attribute still mutates the attribute)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _subscript_global_atom(
    program: ProgramModel, fn: FunctionInfo, target: ast.expr
) -> str | None:
    """``GLOBAL[k] = v`` mutates the module global without a ``global``
    declaration; catch the Name-root case the declared path misses."""
    root = _strip_subscripts(target)
    if not isinstance(root, ast.Name):
        return None
    name = root.id
    module = program.modules[fn.module]
    if name in module.global_names and not is_local_name(fn.node, name):
        return f"global:{fn.module}.{name}"
    return None


def direct_effects(
    program: ProgramModel, fn: FunctionInfo, manifest: ShardManifest
) -> list[EffectSite]:
    """Extract *fn*'s own effects from its AST (no propagation)."""
    is_provider, provider_atom = manifest.provider_atom(fn.fqn)
    if is_provider:
        # The blessed seam: its declared atom is its whole contract.
        return (
            [EffectSite(provider_atom, fn.node)] if provider_atom else []
        )

    params = _param_names(fn) - {"self", "cls"}
    sites: list[EffectSite] = []

    def add(atom: str | None, node: ast.AST) -> None:
        if atom is not None:
            sites.append(EffectSite(atom, node))

    for node in walk_scope(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                for leaf in _unpack_targets(target):
                    if isinstance(leaf, ast.Subscript):
                        add(_subscript_global_atom(program, fn, leaf), node)
                    add(_receiver_atom(program, fn, leaf, params), node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    add(_subscript_global_atom(program, fn, target), node)
                add(_receiver_atom(program, fn, target, params), node)
        elif isinstance(node, ast.Call):
            func = node.func
            # In-place mutator methods: x.append(...), self.d.update(...)
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
            ):
                if isinstance(func.value, ast.Subscript):
                    add(
                        _subscript_global_atom(program, fn, func.value), node
                    )
                add(_receiver_atom(program, fn, func.value, params), node)
                if isinstance(func.value, ast.Name):
                    module = program.modules[fn.module]
                    name = func.value.id
                    if name in module.global_names and not is_local_name(
                        fn.node, name
                    ):
                        add(f"global:{fn.module}.{name}", node)
            # Nondeterminism sources through the walker's stdlib aliases.
            origin = fn.model.resolve_call(node)
            if origin is not None:
                head, _, tail = origin.partition(".")
                if head == "random" and tail in _GLOBAL_RNG_FUNCS:
                    add("rng:raw", node)
                elif origin in _RAW_RNG_CTORS:
                    add("rng:raw", node)
                elif origin in _CLOCK_ORIGINS:
                    add("clock:wall", node)
    return sites


def _unpack_targets(target: ast.expr):
    """Flatten tuple/list unpacking into leaf target expressions."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _unpack_targets(elt)
    elif isinstance(target, ast.Starred):
        yield from _unpack_targets(target.value)
    else:
        yield target


# --------------------------------------------------------------------- #
# Propagation                                                           #
# --------------------------------------------------------------------- #


def _callee_contribution(
    table: EffectTable, callee_fqn: str
) -> set[str]:
    """What calling *callee_fqn* adds to the caller's effect set."""
    manifest = table.manifest
    atom = manifest.channel_atom(callee_fqn)
    if atom is not None:
        # Sanctioned boundary call: the clean atom, nothing else.
        return {atom}
    is_provider, provider_atom = manifest.provider_atom(callee_fqn)
    if is_provider:
        return {provider_atom} if provider_atom else set()
    effects = table.transitive.get(callee_fqn)
    if effects is None:
        return set()
    return {
        a for a in effects if not a.startswith(_NON_PROPAGATING_PREFIX)
    }


def build_effect_table(
    program: ProgramModel, manifest: ShardManifest
) -> EffectTable:
    """Direct extraction, then propagate over call edges to a fixpoint."""
    table = EffectTable(program=program, manifest=manifest)
    for fqn, fn in program.functions.items():
        sites = direct_effects(program, fn, manifest)
        table.direct[fqn] = sites
        table.transitive[fqn] = {site.atom for site in sites}

    # Reverse adjacency: callee -> callers, so one worklist pass per
    # change instead of whole-graph sweeps.
    callers_of: dict[str, set[str]] = {}
    calls: dict[str, set[str]] = {}
    for caller, edges in program.edges.items():
        for edge in edges:
            if edge.status != RESOLVED or edge.target is None:
                continue
            target = edge.target
            if target not in program.functions:
                # Constructor edge to a class without __init__: effect-free.
                continue
            calls.setdefault(caller, set()).add(target)
            callers_of.setdefault(target, set()).add(caller)

    worklist = list(program.functions)
    pending = set(worklist)
    while worklist:
        fqn = worklist.pop()
        pending.discard(fqn)
        effects = table.transitive[fqn]
        before = len(effects)
        for callee in calls.get(fqn, ()):
            effects |= _callee_contribution(table, callee)
        if len(effects) != before:
            for caller in callers_of.get(fqn, ()):
                if caller not in pending:
                    pending.add(caller)
                    worklist.append(caller)
    return table


__all__ = [
    "EffectSite",
    "EffectTable",
    "build_effect_table",
    "direct_effects",
]
