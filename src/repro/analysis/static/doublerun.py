"""The dynamic half of the sanitizer: a hash-seed double-run gate.

Static rules prove the *absence of known hazard patterns*; this harness
checks the property itself: run the golden-trace scenario matrix in two
fresh subprocesses under different ``PYTHONHASHSEED`` values and demand
that every observable — trace JSONL, per-trigger outcomes, the full
counter snapshot — hashes identically.  String hash randomization is the
canonical way set/dict ordering bugs surface, so a mismatch here means a
determinism hazard escaped the static pass (and a new static finding with
a clean double run means the hazard is latent, not harmless).

Each child process is ``python -m repro.analysis.static.doublerun --emit``:
it runs the scenarios via :mod:`repro.net.scenario` and prints one JSON
object mapping scenario id → SHA-256 digest of the canonical (sorted-keys)
JSON encoding of the observables.  The parent diffs the two digest maps.
A fresh interpreter per seed is essential — ``PYTHONHASHSEED`` is read
once at startup and cannot be changed in-process.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.net.scenario import GOLDEN_SCENARIOS, run_scenario

#: The two hash seeds the gate compares (arbitrary but distinct; 0 is the
#: "disabled randomization" value, so one run matches unsalted hashing).
DEFAULT_HASH_SEEDS = (0, 4242)

Scenario = tuple[str, str, str, int]


def scenario_id(scenario: Scenario) -> str:
    service, topology, profile, seed = scenario
    return f"{service}-{topology}-{profile}-s{seed}"


def scenario_digests(
    scenarios: tuple[Scenario, ...] = GOLDEN_SCENARIOS,
    fast_path: bool = True,
) -> dict[str, str]:
    """scenario id → SHA-256 of its canonical observable JSON (in-process)."""
    digests: dict[str, str] = {}
    for scenario in scenarios:
        observables = run_scenario(*scenario, fast_path=fast_path)
        canonical = json.dumps(
            observables, sort_keys=True, separators=(",", ":"), default=str
        )
        digests[scenario_id(scenario)] = hashlib.sha256(
            canonical.encode()
        ).hexdigest()
    return digests


@dataclass
class DoubleRunReport:
    """The gate's verdict: digests per hash seed, and any mismatches."""

    hash_seeds: tuple[int, int]
    digests: dict[int, dict[str, str]]
    #: Scenario ids whose digests differ between the two runs.
    mismatches: list[str] = field(default_factory=list)
    #: Child stderr, kept only on failure for diagnosis.
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.errors

    def to_dict(self) -> dict:
        return {
            "hash_seeds": list(self.hash_seeds),
            "scenarios": sorted(next(iter(self.digests.values()), {})),
            "mismatches": self.mismatches,
            "errors": self.errors,
            "ok": self.ok,
        }

    def format_text(self) -> str:
        lines = [
            f"double-run gate: PYTHONHASHSEED {self.hash_seeds[0]} vs "
            f"{self.hash_seeds[1]}, "
            f"{len(next(iter(self.digests.values()), {}))} scenario(s)"
        ]
        for scenario in self.mismatches:
            lines.append(f"  MISMATCH {scenario}")
        for error in self.errors:
            lines.append(f"  error: {error}")
        lines.append(f"verdict: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def _child_env(hash_seed: int) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    # The child must import the same repro package as the parent, even when
    # running from a source checkout that was never pip-installed.
    src_dir = str(Path(__file__).resolve().parents[3])
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            f"{src_dir}{os.pathsep}{existing}" if existing else src_dir
        )
    return env


def double_run(
    scenarios: tuple[Scenario, ...] = GOLDEN_SCENARIOS,
    hash_seeds: tuple[int, int] = DEFAULT_HASH_SEEDS,
    timeout: float = 600.0,
) -> DoubleRunReport:
    """Run *scenarios* under both hash seeds in subprocesses and diff."""
    spec = json.dumps([list(s) for s in scenarios], sort_keys=True)
    report = DoubleRunReport(hash_seeds=hash_seeds, digests={})
    for hash_seed in hash_seeds:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.static.doublerun",
             "--emit", "--scenarios", spec],
            env=_child_env(hash_seed),
            capture_output=True,
            text=True,
            timeout=timeout,
        )
        if proc.returncode != 0:
            report.errors.append(
                f"PYTHONHASHSEED={hash_seed} run failed "
                f"(exit {proc.returncode}): {proc.stderr.strip()[-2000:]}"
            )
            report.digests[hash_seed] = {}
            continue
        report.digests[hash_seed] = json.loads(proc.stdout)
    if not report.errors:
        first, second = (report.digests[seed] for seed in hash_seeds)
        report.mismatches = sorted(
            sid
            for sid in set(first) | set(second)
            if first.get(sid) != second.get(sid)
        )
    return report


def _main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="double-run determinism gate (child emit mode)"
    )
    parser.add_argument("--emit", action="store_true",
                        help="run scenarios and print the digest map")
    parser.add_argument("--scenarios", default=None,
                        help="JSON list of [service, topology, profile, seed]")
    args = parser.parse_args(argv)
    scenarios = GOLDEN_SCENARIOS
    if args.scenarios:
        scenarios = tuple(tuple(item) for item in json.loads(args.scenarios))
    if args.emit:
        print(json.dumps(scenario_digests(scenarios), sort_keys=True))
        return 0
    report = double_run(scenarios)
    print(report.format_text())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(_main())
