"""Determinism & shared-state sanitizer: static analysis over the source.

The second static-analysis subsystem, beside the flow-rule lint
(:mod:`repro.analysis.lint`): an AST-based pass over ``src/repro/**`` with
a pluggable rule registry emitting ``DET001``-``DET007`` (determinism
hazards: global RNG, OS entropy, wall clocks, hash-ordered escapes) and
``RACE001``-``RACE003`` (shared-state hazards: the cross-process races the
sharded simulator will inherit).  Findings carry severities and fix hints,
can be silenced per site (``# repro: allow[DET003] reason``) or permitted
by a committed baseline (``sancheck-baseline.json``) so CI fails only on
*new* findings.

Its runtime cross-check is :mod:`repro.analysis.static.doublerun`: the
golden-trace scenario matrix executed twice in subprocesses under
different ``PYTHONHASHSEED`` values, with every observable hashed —
hash-order nondeterminism the static pass misses shows up as a digest
mismatch, and static findings explain dynamic mismatches.

CLI: ``smartsouth sancheck [--json] [--baseline PATH] [--write-baseline]
[--double-run]``.  Catalogue and workflow: ``docs/STATIC_ANALYSIS.md``.
"""

from repro.analysis.static.baseline import (
    BASELINE_NAME,
    discover_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.static.doublerun import (
    DoubleRunReport,
    double_run,
    scenario_digests,
)
from repro.analysis.static.findings import (
    SAN_RULES,
    SanFinding,
    SanReport,
    SanRule,
    san_rule,
)
from repro.analysis.static.runner import (
    SanConfig,
    analyze_models,
    default_scan_root,
    run_sancheck,
)
from repro.analysis.static.walker import ModuleModel, build_models

__all__ = [
    "BASELINE_NAME",
    "DoubleRunReport",
    "ModuleModel",
    "SAN_RULES",
    "SanConfig",
    "SanFinding",
    "SanReport",
    "SanRule",
    "analyze_models",
    "build_models",
    "default_scan_root",
    "discover_baseline",
    "double_run",
    "load_baseline",
    "run_sancheck",
    "san_rule",
    "scenario_digests",
    "write_baseline",
]
