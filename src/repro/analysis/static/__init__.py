"""Determinism & shared-state sanitizer: static analysis over the source.

The second static-analysis subsystem, beside the flow-rule lint
(:mod:`repro.analysis.lint`): an AST-based pass over ``src/repro/**`` with
a pluggable rule registry emitting ``DET001``-``DET007`` (determinism
hazards: global RNG, OS entropy, wall clocks, hash-ordered escapes) and
``RACE001``-``RACE003`` (shared-state hazards: the cross-process races the
sharded simulator will inherit).  Findings carry severities and fix hints,
can be silenced per site (``# repro: allow[DET003] reason``) or permitted
by a committed baseline (``sancheck-baseline.json``) so CI fails only on
*new* findings.

Its runtime cross-check is :mod:`repro.analysis.static.doublerun`: the
golden-trace scenario matrix executed twice in subprocesses under
different ``PYTHONHASHSEED`` values, with every observable hashed —
hash-order nondeterminism the static pass misses shows up as a digest
mismatch, and static findings explain dynamic mismatches.

Its whole-program sibling is ``smartsouth shardcheck``: a call graph over
the same models (:mod:`repro.analysis.static.callgraph`), per-function
effect sets propagated to a fixpoint (:mod:`.effects`), an ownership
manifest naming every runtime object's shard owner (:mod:`.shardmodel`),
and the ``EFF001``-``EFF003`` / ``SHARD001``-``SHARD004`` rule families
(:mod:`.shardrules`) certifying the codebase for the sharded
multi-process simulator, with its own baseline
(``shardcheck-baseline.json``) and the committed per-public-API effect
summary (``shardcheck-effects.json``) as the declared contract.

CLI: ``smartsouth sancheck [--json] [--baseline PATH] [--write-baseline]
[--prune-baseline] [--double-run] [--interprocedural]`` and
``smartsouth shardcheck [--json] [--write-effects] [--min-resolution R]``.
Catalogue and workflow: ``docs/STATIC_ANALYSIS.md``.
"""

from repro.analysis.static.baseline import (
    BASELINE_NAME,
    SHARD_BASELINE_NAME,
    discover_baseline,
    load_baseline,
    prune_baseline,
    write_baseline,
)
from repro.analysis.static.doublerun import (
    DoubleRunReport,
    double_run,
    scenario_digests,
)
from repro.analysis.static.findings import (
    SAN_RULES,
    SanFinding,
    SanReport,
    SanRule,
    san_rule,
)
from repro.analysis.static.callgraph import ProgramModel, build_program
from repro.analysis.static.effects import EffectTable, build_effect_table
from repro.analysis.static.runner import (
    EFFECTS_NAME,
    SanConfig,
    ShardReport,
    analyze_models,
    analyze_program,
    default_scan_root,
    run_sancheck,
    run_shardcheck,
)
from repro.analysis.static.shardmodel import ShardManifest, default_manifest
from repro.analysis.static.shardrules import IPA_RULES, ipa_rule
from repro.analysis.static.walker import ModuleModel, build_models

__all__ = [
    "BASELINE_NAME",
    "DoubleRunReport",
    "EFFECTS_NAME",
    "EffectTable",
    "IPA_RULES",
    "ModuleModel",
    "ProgramModel",
    "SAN_RULES",
    "SHARD_BASELINE_NAME",
    "SanConfig",
    "SanFinding",
    "SanReport",
    "SanRule",
    "ShardManifest",
    "ShardReport",
    "analyze_models",
    "analyze_program",
    "build_effect_table",
    "build_models",
    "build_program",
    "default_manifest",
    "default_scan_root",
    "discover_baseline",
    "double_run",
    "ipa_rule",
    "load_baseline",
    "prune_baseline",
    "run_sancheck",
    "run_shardcheck",
    "san_rule",
    "scenario_digests",
    "write_baseline",
]
