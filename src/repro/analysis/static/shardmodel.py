"""The ownership manifest: who may own what in a sharded simulation.

The ROADMAP's next scale unlock partitions the simulated network across
worker processes.  That is only sound if every piece of runtime state has
exactly one owner, and everything that crosses a shard boundary goes
through an API a message layer could serialize.  This module writes that
contract down *declaratively* so the interprocedural rules
(:mod:`repro.analysis.static.shardrules`) can machine-check it:

* **shard-owned** — lives entirely inside one worker (a ``Switch`` and its
  tables, fast-path caches, per-traversal scratch).  Any code may mutate
  it; the shard boundary never sees it.
* **shard-crossing** — state two shards would both touch (``Link`` queues,
  the ``ControlChannel``, the event queue, the epoch clock).  Mutation is
  legal only inside the owning class or through the *channel API* below,
  because each such call site becomes a cross-process message.
* **frozen** — built once, then immutable and freely replicable
  (``Topology``, compiled service programs).  Mutation outside the
  declared *builders* breaks replicas silently.

The manifest also names the *effect providers* — the blessed determinism
seams (:mod:`repro.core.determinism`) whose calls map to clean effect
atoms instead of their raw ``random``/``time`` internals — and the
*sanctioned globals*: module-level registries that are mutated only at
import time and therefore identical in every shard.

Everything here is data, not code: a sharding refactor edits this file in
the same commit that moves an object across the boundary, and the CI
shardcheck job holds the codebase to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

SHARD_OWNED = "shard-owned"
SHARD_CROSSING = "shard-crossing"
FROZEN = "frozen"

_OWNERSHIP_KINDS = (SHARD_OWNED, SHARD_CROSSING, FROZEN)


@dataclass(frozen=True)
class ShardManifest:
    """Declarative ownership contract for the runtime object graph."""

    #: bare class name -> ownership kind (classes not listed are
    #: unclassified: effect inference still tracks them, but the SHARD
    #: rules stay silent about their state).
    ownership: dict[str, str] = field(default_factory=dict)
    #: ``ClassName.method`` -> effect atom; calling one of these is the
    #: *sanctioned* way to touch shard-crossing state, so callers inherit
    #: the clean atom instead of the method's raw mutations.
    channel_api: dict[str, str] = field(default_factory=dict)
    #: ``ClassName.method`` entries allowed to mutate frozen state (the
    #: build phase).  ``__init__`` of a frozen class is always a builder.
    builders: frozenset[str] = frozenset()
    #: ``module.NAME`` module globals whose mutation is sanctioned
    #: (import-time registries, memoisation caches keyed on immutables).
    sanctioned_globals: frozenset[str] = frozenset()
    #: function/method FQN suffix -> effect atom (or None for "pure");
    #: the determinism seams whose internals are masked.
    providers: dict[str, str | None] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for cls, kind in self.ownership.items():
            if kind not in _OWNERSHIP_KINDS:
                raise ValueError(
                    f"unknown ownership kind {kind!r} for class {cls!r}"
                )

    # ------------------------------------------------------------------ #
    # Lookups (all keyed on suffixes so manifests survive module moves)  #
    # ------------------------------------------------------------------ #

    def ownership_of(self, class_name: str) -> str | None:
        """Ownership kind for a bare class name (last FQN component)."""
        return self.ownership.get(class_name.rsplit(".", 1)[-1])

    def _method_key(self, fqn: str) -> str | None:
        """``Class.method`` suffix of a method FQN, or None for functions."""
        parts = fqn.rsplit(".", 2)
        if len(parts) >= 2:
            return ".".join(parts[-2:])
        return None

    def channel_atom(self, fqn: str) -> str | None:
        """The sanctioned effect atom for calling *fqn*, if it is part of
        the channel API."""
        key = self._method_key(fqn)
        return self.channel_api.get(key) if key else None

    def is_builder(self, fqn: str) -> bool:
        key = self._method_key(fqn)
        if key is None:
            return False
        if key in self.builders:
            return True
        cls, _, method = key.partition(".")
        return method == "__init__" and self.ownership_of(cls) == FROZEN

    def provider_atom(self, fqn: str) -> tuple[bool, str | None]:
        """(is_provider, atom) for *fqn*; matched on dotted suffixes so
        both ``repro.core.determinism.seeded_rng`` and a fixture's
        ``determinism.seeded_rng`` hit."""
        for suffix, atom in self.providers.items():
            if fqn == suffix or fqn.endswith("." + suffix):
                return True, atom
        return False, None

    def is_sanctioned_global(self, module: str, name: str) -> bool:
        dotted = f"{module}.{name}"
        for entry in self.sanctioned_globals:
            if dotted == entry or dotted.endswith("." + entry):
                return True
        return False

    def to_dict(self) -> dict:
        return {
            "ownership": dict(sorted(self.ownership.items())),
            "channel_api": dict(sorted(self.channel_api.items())),
            "builders": sorted(self.builders),
            "sanctioned_globals": sorted(self.sanctioned_globals),
            "providers": dict(sorted(self.providers.items())),
        }


def default_manifest() -> ShardManifest:
    """The contract for this repository's runtime object graph.

    Kept in one place on purpose: when the sharded simulator moves an
    object across the boundary, this function is the diff reviewers read.
    """
    return ShardManifest(
        ownership={
            # One worker's private world: a switch, its flow state, and
            # the compiled fast path over it.
            "Switch": SHARD_OWNED,
            "FlowTable": SHARD_OWNED,
            "FlowEntry": SHARD_OWNED,
            "GroupTable": SHARD_OWNED,
            "Group": SHARD_OWNED,
            "FastPath": SHARD_OWNED,
            "FastTable": SHARD_OWNED,
            "Packet": SHARD_OWNED,
            "EpochGate": SHARD_OWNED,
            # State both sides of a cut would touch: every mutation is a
            # future cross-process message.
            "Link": SHARD_CROSSING,
            "ControlChannel": SHARD_CROSSING,
            "EpochClock": SHARD_CROSSING,
            "Simulator": SHARD_CROSSING,
            "Network": SHARD_CROSSING,
            "Trace": SHARD_CROSSING,
            # Built once, replicated everywhere.
            "Topology": FROZEN,
            "TagLayout": FROZEN,
        },
        channel_api={
            # The southbound control channel: the only sanctioned door
            # into another shard's switches.
            "ControlChannel.packet_out": "channel:send",
            "ControlChannel.packet_out_port": "channel:send",
            "ControlChannel._on_packet_in": "channel:recv",
            "ControlChannel.set_packet_in_handler": "channel:recv",
            "ControlChannel.disconnect": "channel:admin",
            "ControlChannel.reconnect": "channel:admin",
            # The channel's seeded fault model: fault installation and the
            # outage/partition switches are management-plane admin; the
            # internal queue scheduler is the send path's machinery.
            "ControlChannel.set_faults": "channel:admin",
            "ControlChannel.fail_controller": "channel:admin",
            "ControlChannel.restore_controller": "channel:admin",
            "ControlChannel.partition_window": "channel:admin",
            "ControlChannel.flap": "channel:admin",
            "ControlChannel.outage_window": "channel:admin",
            "ControlChannel._schedule": "channel:send",
            "ControlChannel._deliver_out": "channel:send",
            "ControlChannel._deliver_in": "channel:recv",
            # Controller process lifecycle (crash/restart are control-plane
            # admin events; a sharded run must broadcast them).
            "Controller.crash": "channel:admin",
            "Controller.restart": "channel:admin",
            # The event queue (a sharded run gives each worker a cursor).
            "Simulator.schedule": "event-queue",
            "Simulator.at": "event-queue",
            "Simulator.schedule_arrival": "event-queue",
            "Simulator.run": "event-queue",
            "Network.run": "event-queue",
            "Network.inject": "event-queue",
            "Network.transmit": "event-queue",
            "Network.at_packet_step": "event-queue",
            "Network.set_handler": "channel:admin",
            "Network.set_batch_handler": "channel:admin",
            "Network.set_controller_sink": "channel:admin",
            "Network.set_delivery_sink": "channel:admin",
            # Epoch advancement is a barrier in a sharded run; the
            # post-crash resync jump is the same barrier, repeated.
            "EpochClock.advance": "epoch:advance",
            "EpochClock.resync": "epoch:advance",
            # Fault injection / healing acts on the shared link fabric.
            # The module-level helpers in repro.net.failures are the
            # chaos campaigns' designated injection seam.
            "Network.fail_link": "link:admin",
            "Network.fail_edges": "link:admin",
            "failures.fail_random_links": "link:admin",
            "failures.fail_edge_after_steps": "link:admin",
            "failures.fail_link_after_steps": "link:admin",
            "failures.isolate_node": "link:admin",
            "failures.fail_region": "link:admin",
            "failures.restore_node": "link:admin",
            "failures.restore_region": "link:admin",
            "Link.set_blackhole": "link:admin",
            "Link.set_loss": "link:admin",
            "Link.set_duplication": "link:admin",
            "Link.set_jitter": "link:admin",
            "Link.clear": "link:admin",
            "Trace.record": "trace:append",
            "Trace.clear": "trace:append",
        },
        builders=frozenset(
            {
                "Topology.add_node",
                "Topology.add_edge",
                "Topology.add_link",
            }
        ),
        sanctioned_globals=frozenset(
            {
                # Import-time registries and memo caches keyed on
                # immutables — identical in every shard, already covered
                # by the sancheck RACE001 baseline.
                "repro.core.compiler._CODEGENS",
                "repro.openflow.fastpath._KEY_FN_CACHE",
            }
        ),
        providers={
            # Suffix-matched, so the blessed seams resolve wherever the
            # determinism module sits in the scanned tree.
            "determinism.seeded_rng": "rng:seeded",
            "determinism.derive_rng": "rng:seeded",
            "determinism.derive_seed": None,
            "determinism.wall_clock": "clock:wall",
            # Packet-id allocation: an owned allocator object inside the
            # provider (the paid-down ``_packet_ids`` EFF001 debt); a
            # sharded run deals each worker its own id range here.
            "determinism.next_packet_id": "packet-id",
            "determinism.reset_packet_ids": "packet-id",
            "determinism.PacketIdAllocator.allocate": "packet-id",
            "determinism.PacketIdAllocator.reset": "packet-id",
        },
    )


__all__ = [
    "FROZEN",
    "SHARD_CROSSING",
    "SHARD_OWNED",
    "ShardManifest",
    "default_manifest",
]
