"""Whole-program call graph over the sanitizer's :class:`ModuleModel` ASTs.

The per-site rules (``DET*``/``RACE*``) judge one line at a time; the
sharding rules (``EFF*``/``SHARD*``) need to know what a function *reaches*.
This module builds that reachability: a symbol table of every module,
class, and function under the scan roots, a light type-inference layer
(annotations, constructor assignments, dataclass fields, container element
types), and one :class:`CallEdge` per call site — resolved to a package
function, classified *external* (stdlib/builtins), or recorded
*unresolved* with a reason.  Unresolved sites are counted, never dropped:
the resolution rate is part of the report and CI gates on it, so a
refactor that silently blinds the analyzer fails loudly.

Resolution handles the call shapes this codebase actually uses:

* plain module functions and intra-package imports (``from repro.x import f``);
* methods through ``self``/``cls``, including inherited ones (base classes
  are resolved across modules and walked breadth-first);
* ``super().m()`` to the nearest base defining ``m``;
* attribute chains through typed receivers — parameter annotations,
  ``x: T`` locals, ``x = ClassName(...)`` locals, instance attributes
  assigned in any method (``self.sim = Simulator()``) or declared as
  dataclass fields, and factory returns with ``-> T`` annotations;
* container element types: ``links: list[Link]`` makes ``links[i].fail()``
  and ``for link in links: link.fail()`` resolve, ``dict[K, V]`` feeds
  subscripts, ``.get``, ``.items()``/``.keys()``/``.values()`` loops;
* constructor calls (edge to ``T.__init__`` when defined);
* function references passed as arguments (handlers, hooks) become
  *callback* edges — the conservative assumption is that a function you
  hand over will be called.

Receivers proven to be builtin containers/scalars or instances of
*external* classes (``argparse``, ``re`` …) route their method calls to
*external*.  Everything else — ``fn()`` on an untyped local, attributes on
unknown receivers — is unresolved, with the reason kept for the report.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.analysis.static.walker import ModuleModel

#: Builtin type kinds the inference layer distinguishes from package
#: classes.  ``"object"`` doubles as "instance of an external class".
_BUILTIN_KINDS = frozenset(
    {
        "list",
        "dict",
        "set",
        "frozenset",
        "tuple",
        "str",
        "bytes",
        "int",
        "float",
        "bool",
        "object",
    }
)

#: ``typing`` names mapped onto the container kinds above (None = unwrap).
_TYPING_KINDS: dict[str, str | None] = {
    "Iterable": "list",
    "Iterator": "list",
    "Sequence": "list",
    "MutableSequence": "list",
    "List": "list",
    "Deque": "list",
    "Set": "set",
    "MutableSet": "set",
    "AbstractSet": "set",
    "FrozenSet": "frozenset",
    "Tuple": "tuple",
    "Dict": "dict",
    "Mapping": "dict",
    "MutableMapping": "dict",
    "DefaultDict": "dict",
    "OrderedDict": "dict",
    "Counter": "dict",
    "Callable": "object",
    "Optional": None,
    "Any": None,
}

#: Lowercase builtin container names usable as subscripted annotations.
_CONTAINER_KINDS = frozenset({"list", "dict", "set", "frozenset", "tuple"})

#: Constructor-call origins mapping to builtin kinds (via the stdlib alias
#: resolution the walker already does).
_BUILTIN_CTORS = {
    "builtins.list": "list",
    "builtins.dict": "dict",
    "builtins.set": "set",
    "builtins.frozenset": "frozenset",
    "builtins.tuple": "tuple",
    "builtins.sorted": "list",
    "builtins.str": "str",
    "builtins.int": "int",
    "builtins.float": "float",
    "builtins.bool": "bool",
    "collections.defaultdict": "dict",
    "collections.OrderedDict": "dict",
    "collections.Counter": "dict",
    "collections.deque": "list",
}

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

# Call-site classifications.
RESOLVED = "resolved"
EXTERNAL = "external"
UNRESOLVED = "unresolved"

#: Marker for "instance of a class outside the scanned package".
_EXTERNAL_INSTANCE = "object"


@dataclass
class FunctionInfo:
    """One function or method in the program."""

    fqn: str
    module: str
    qualname: str
    node: ast.AST
    model: ModuleModel
    #: Owning class when this is a method defined directly in a class body.
    cls: "ClassInfo | None" = None
    #: local/param name -> inferred type (built lazily).
    local_types: "dict[str, TypeRef] | None" = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_public(self) -> bool:
        """Part of the package's public surface: no leading underscore on
        the function or any enclosing scope, and not nested in a function."""
        parts = self.qualname.split(".")
        if any(part.startswith("_") for part in parts):
            return False
        module_private = any(
            part.startswith("_") for part in self.module.split(".")
        )
        if module_private:
            return False
        # Either a module-level function or a method directly on a class.
        return len(parts) == 1 or (self.cls is not None and len(parts) == 2)


@dataclass
class ClassInfo:
    """One class: methods, bases, and inferred instance-attribute types."""

    fqn: str
    module: str
    name: str
    node: ast.ClassDef
    model: ModuleModel
    base_exprs: list[ast.expr] = field(default_factory=list)
    #: Resolved base ClassInfos (filled after all modules are indexed).
    bases: list["ClassInfo"] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: instance attr -> inferred type (annotation wins over assignment).
    attr_types: dict[str, "TypeRef | None"] = field(default_factory=dict)

    def _mro_walk(self) -> Iterator["ClassInfo"]:
        seen: set[str] = set()
        stack: list[ClassInfo] = [self]
        while stack:
            cls = stack.pop(0)
            if cls.fqn in seen:
                continue
            seen.add(cls.fqn)
            yield cls
            stack.extend(cls.bases)

    def find_method(self, name: str) -> FunctionInfo | None:
        """Look *name* up on this class, then breadth-first through bases."""
        for cls in self._mro_walk():
            if name in cls.methods:
                return cls.methods[name]
        return None

    def find_attr_type(self, name: str) -> "TypeRef | None":
        for cls in self._mro_walk():
            if name in cls.attr_types:
                return cls.attr_types[name]
        return None

    def has_attr(self, name: str) -> bool:
        return any(name in cls.attr_types for cls in self._mro_walk())


@dataclass(frozen=True)
class ContainerType:
    """A builtin container with (partially) known element types.

    ``elem`` is what iteration yields (dict: the key type); ``value`` is
    what subscripting yields for mappings; ``elts`` carries the per-slot
    types of a fixed-shape tuple (``tuple[A, B]``).
    """

    kind: str
    elem: "TypeRef | None" = None
    value: "TypeRef | None" = None
    elts: "tuple[TypeRef | None, ...] | None" = None


#: A type: package class, container with element types, or builtin kind.
TypeRef = Union[ClassInfo, ContainerType, str]


def builtin_kind(ref: "TypeRef | None") -> str | None:
    """The builtin kind of *ref*, or None for package classes/unknown."""
    if isinstance(ref, str):
        return ref
    if isinstance(ref, ContainerType):
        return ref.kind
    return None


@dataclass
class ModuleInfo:
    """One module's symbols and import environment."""

    fqn: str
    model: ModuleModel
    #: local name -> dotted target for every import in the module.
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level names bound by assignment (globals candidates).
    global_names: set[str] = field(default_factory=set)
    #: module-level name -> inferred type of its binding (aliases, caches).
    global_types: dict[str, "TypeRef | None"] = field(default_factory=dict)


@dataclass
class CallEdge:
    """One call site, classified."""

    caller: str
    status: str
    #: FQN of the resolved package function (resolved edges only).
    target: str | None
    #: Why the site could not be resolved (unresolved edges only).
    reason: str | None
    lineno: int
    col: int
    #: Source spelling of the callee, for reports.
    callee_text: str
    #: A function reference passed as an argument rather than called.
    callback: bool = False

    def to_dict(self) -> dict:
        return {
            "caller": self.caller,
            "status": self.status,
            "target": self.target,
            "reason": self.reason,
            "line": self.lineno,
            "col": self.col,
            "callee": self.callee_text,
            "callback": self.callback,
        }


@dataclass
class ProgramModel:
    """The whole scanned program: symbols, types, and the call graph."""

    models: list[ModuleModel]
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: caller fqn -> its call edges (every site, in source order).
    edges: dict[str, list[CallEdge]] = field(default_factory=dict)
    models_by_path: dict[str, ModuleModel] = field(default_factory=dict)
    _method_names: set[str] | None = field(default=None, repr=False)
    _subclasses: dict[str, list["ClassInfo"]] | None = field(
        default=None, repr=False
    )

    def method_names(self) -> set[str]:
        """Every method name defined on any package class.  A call whose
        attribute name appears nowhere in this set cannot land on package
        code, so an unknown receiver is provably external."""
        if self._method_names is None:
            names: set[str] = set()
            for cls in self.classes.values():
                names.update(cls.methods)
            self._method_names = names
        return self._method_names

    def subclasses_of(self, cls: ClassInfo) -> list[ClassInfo]:
        """All (transitive) subclasses of *cls* in the program."""
        if self._subclasses is None:
            direct: dict[str, list[ClassInfo]] = {}
            for candidate in self.classes.values():
                for base in candidate.bases:
                    direct.setdefault(base.fqn, []).append(candidate)
            self._subclasses = direct
        out: list[ClassInfo] = []
        stack = list(self._subclasses.get(cls.fqn, []))
        while stack:
            sub = stack.pop()
            if all(sub.fqn != seen.fqn for seen in out):
                out.append(sub)
                stack.extend(self._subclasses.get(sub.fqn, []))
        return out

    def virtual_methods(self, cls: ClassInfo, name: str) -> list[FunctionInfo]:
        """Class-hierarchy dispatch: implementations of *name* reachable
        from a receiver statically typed *cls* (its own lookup first, else
        every subclass override — a polymorphic site yields one edge per
        candidate, which is the sound over-approximation)."""
        own = cls.find_method(name)
        if own is not None:
            return [own]
        seen: dict[str, FunctionInfo] = {}
        for sub in self.subclasses_of(cls):
            method = sub.find_method(name)
            if method is not None:
                seen.setdefault(method.fqn, method)
        return list(seen.values())

    def virtual_attr_type(
        self, cls: ClassInfo, name: str
    ) -> "TypeRef | None":
        """Attr type under class-hierarchy dispatch: the receiver's own
        declaration, else the unique type subclasses agree on."""
        own = cls.find_attr_type(name)
        if own is not None:
            return own
        unique: list[TypeRef] = []
        for sub in self.subclasses_of(cls):
            found = sub.find_attr_type(name)
            if found is not None and all(found is not u for u in unique):
                unique.append(found)
        if len(unique) == 1:
            return unique[0]
        if unique and all(t == unique[0] for t in unique[1:]):
            return unique[0]
        return None

    # ------------------------------------------------------------------ #
    # Stats                                                              #
    # ------------------------------------------------------------------ #

    def all_edges(self) -> Iterator[CallEdge]:
        for edges in self.edges.values():
            yield from edges

    def resolution_stats(self) -> dict:
        # A polymorphic site contributes several edges; count *sites*.
        rank = {UNRESOLVED: 0, EXTERNAL: 1, RESOLVED: 2}
        sites: dict[tuple, str] = {}
        reasons: dict[str, int] = {}
        for edge in self.all_edges():
            if edge.callback:
                continue
            key = (edge.caller, edge.lineno, edge.col, edge.callee_text)
            prev = sites.get(key)
            if prev is None or rank[edge.status] > rank[prev]:
                sites[key] = edge.status
            if edge.status == UNRESOLVED and edge.reason:
                reasons[edge.reason] = reasons.get(edge.reason, 0) + 1
        counts = {RESOLVED: 0, EXTERNAL: 0, UNRESOLVED: 0}
        for status in sites.values():
            counts[status] += 1
        in_package = counts[RESOLVED] + counts[UNRESOLVED]
        rate = counts[RESOLVED] / in_package if in_package else 1.0
        return {
            "call_sites": len(sites),
            "resolved": counts[RESOLVED],
            "external": counts[EXTERNAL],
            "unresolved": counts[UNRESOLVED],
            "resolution_rate": round(rate, 4),
            "unresolved_reasons": dict(sorted(reasons.items())),
        }

    def unresolved_sites(self) -> list[CallEdge]:
        return [
            e for e in self.all_edges() if e.status == UNRESOLVED and not e.callback
        ]

    # ------------------------------------------------------------------ #
    # Symbol resolution                                                  #
    # ------------------------------------------------------------------ #

    def lookup_dotted(
        self, dotted: str
    ) -> FunctionInfo | ClassInfo | ModuleInfo | None:
        """Resolve a fully dotted path against the program's symbols.

        Tries the longest module prefix, then walks the remainder through
        classes (methods) and module members.
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            module = self.modules.get(prefix)
            if module is None:
                continue
            rest = parts[cut:]
            if not rest:
                return module
            head, *tail = rest
            if head in module.classes:
                cls = module.classes[head]
                if not tail:
                    return cls
                if len(tail) == 1:
                    return cls.find_method(tail[0])
                return None
            if head in module.functions and not tail:
                return module.functions[head]
            return None
        return None

    def in_package(self, dotted: str) -> bool:
        head = dotted.split(".")[0]
        return any(
            mod == head or mod.startswith(head + ".") for mod in self.modules
        )

    def class_of(self, type_ref: "TypeRef | None") -> ClassInfo | None:
        return type_ref if isinstance(type_ref, ClassInfo) else None


# --------------------------------------------------------------------- #
# Construction                                                          #
# --------------------------------------------------------------------- #


def module_fqn(model: ModuleModel) -> str:
    """Dotted module name from the finding-relative path."""
    rel = model.relpath
    if rel.endswith("/__init__.py"):
        rel = rel[: -len("/__init__.py")]
    elif rel == "__init__.py":
        rel = model.path.parent.name
    elif rel.endswith(".py"):
        rel = rel[: -len(".py")]
    return rel.replace("/", ".")


def _collect_all_imports(info: ModuleInfo) -> None:
    """Every import binding, package-internal or not (the walker tracks
    only the stdlib modules its rules care about)."""
    for node in ast.walk(info.model.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    info.imports[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    info.imports[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = info.fqn.split(".")
                # level 1 = the current package; each extra level climbs one.
                cut = len(base_parts) - node.level
                base = ".".join(base_parts[: max(cut, 0)])
                target = f"{base}.{node.module}" if node.module else base
            else:
                target = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = (
                    f"{target}.{alias.name}" if target else alias.name
                )


def _index_module(model: ModuleModel, program: ProgramModel) -> ModuleInfo:
    fqn = module_fqn(model)
    info = ModuleInfo(fqn=fqn, model=model)
    _collect_all_imports(info)
    for stmt in model.tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    info.global_names.add(target.id)
    for node in ast.walk(model.tree):
        if isinstance(node, ast.ClassDef):
            qual = model.qualname(node)
            cls_qual = f"{qual}.{node.name}" if qual != "<module>" else node.name
            cls = ClassInfo(
                fqn=f"{fqn}.{cls_qual}",
                module=fqn,
                name=node.name,
                node=node,
                model=model,
                base_exprs=list(node.bases),
            )
            program.classes[cls.fqn] = cls
            if qual == "<module>":
                info.classes[node.name] = cls
        elif isinstance(node, _FUNC_NODES):
            qual = model.qualname(node)
            fn_qual = f"{qual}.{node.name}" if qual != "<module>" else node.name
            parent_scope = model.enclosing_scope(node)
            fn = FunctionInfo(
                fqn=f"{fqn}.{fn_qual}",
                module=fqn,
                qualname=fn_qual,
                node=node,
                model=model,
            )
            program.functions[fn.fqn] = fn
            if qual == "<module>":
                info.functions[node.name] = fn
            if isinstance(parent_scope, ast.ClassDef):
                fn._parent_class_node = parent_scope  # type: ignore[attr-defined]
    return info


def _link_methods(program: ProgramModel) -> None:
    node_to_class = {cls.node: cls for cls in program.classes.values()}
    for fn in program.functions.values():
        parent = getattr(fn, "_parent_class_node", None)
        if parent is not None:
            cls = node_to_class.get(parent)
            if cls is not None:
                fn.cls = cls
                cls.methods[fn.name] = fn


def _resolve_symbol(
    program: ProgramModel, module: ModuleInfo, dotted: str
) -> FunctionInfo | ClassInfo | ModuleInfo | str | None:
    """Resolve *dotted* (local spelling) in *module*'s environment.

    Returns a program symbol, the string ``"external"``, or None (unknown).
    """
    parts = dotted.split(".")
    head = parts[0]
    if head in module.imports:
        target = module.imports[head]
        full = ".".join([target, *parts[1:]])
        if program.in_package(target):
            return program.lookup_dotted(full)
        return EXTERNAL
    if head in module.classes:
        cls = module.classes[head]
        if len(parts) == 1:
            return cls
        if len(parts) == 2:
            return cls.find_method(parts[1])
        return None
    if head in module.functions and len(parts) == 1:
        return module.functions[head]
    if head in module.global_names:
        return None  # a module-level value; its type may still be known
    if hasattr(builtins, head):
        return EXTERNAL
    return None


# --------------------------------------------------------------------- #
# Type inference                                                        #
# --------------------------------------------------------------------- #


def annotation_type(
    program: ProgramModel, module: ModuleInfo, ann: ast.expr | None
) -> TypeRef | None:
    """The type an annotation names, where we can prove it."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant):
        if not isinstance(ann.value, str):
            return None
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        # `T | None` (or `None | T`): take the non-None side.
        for side in (ann.left, ann.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                result = annotation_type(program, module, side)
                if result is not None:
                    return result
        return None
    if isinstance(ann, ast.Subscript):
        base_name = _dotted_text(ann.value)
        kind = _annotation_kind(base_name)
        if kind is None and base_name is not None:
            # `Optional[T]` unwraps; unknown generics fall through.
            stripped = base_name.rsplit(".", 1)[-1]
            if stripped == "Optional":
                return annotation_type(program, module, ann.slice)
            base = annotation_type(program, module, ann.value)
            return base if isinstance(base, (str, ContainerType)) else None
        if kind is None:
            return None
        if kind == "object":
            return _EXTERNAL_INSTANCE
        slc = ann.slice
        if kind == "dict":
            if isinstance(slc, ast.Tuple) and len(slc.elts) == 2:
                return ContainerType(
                    "dict",
                    elem=annotation_type(program, module, slc.elts[0]),
                    value=annotation_type(program, module, slc.elts[1]),
                )
            return ContainerType("dict")
        if kind == "tuple":
            if isinstance(slc, ast.Tuple) and slc.elts:
                homogeneous = len(slc.elts) == 2 and isinstance(
                    slc.elts[1], ast.Constant
                )  # tuple[T, ...]
                elts = tuple(
                    annotation_type(program, module, e) for e in slc.elts
                )
                if homogeneous:
                    return ContainerType("tuple", elem=elts[0])
                return ContainerType(
                    "tuple",
                    elem=elts[0],
                    value=elts[1] if len(elts) > 1 else None,
                    elts=elts,
                )
            return ContainerType(
                "tuple", elem=annotation_type(program, module, slc)
            )
        elem_ann = slc.elts[0] if isinstance(slc, ast.Tuple) and slc.elts else slc
        return ContainerType(kind, elem=annotation_type(program, module, elem_ann))
    dotted = _dotted_text(ann)
    if dotted is None:
        return None
    kind = _annotation_kind(dotted)
    if kind is not None:
        return kind
    symbol = _resolve_symbol(program, module, dotted)
    if isinstance(symbol, ClassInfo):
        return symbol
    if symbol == EXTERNAL:
        return _EXTERNAL_INSTANCE
    if symbol is None:
        if dotted in module.global_types:
            # A module-level alias (`Rng = random.Random`).
            return module.global_types[dotted]
        return _imported_global_type(program, module, dotted)
    return None


def _annotation_kind(name: str | None) -> str | None:
    """Map an annotation head name to a builtin kind, if it is one."""
    if name is None:
        return None
    stripped = name.rsplit(".", 1)[-1]
    if stripped in _CONTAINER_KINDS or stripped in _BUILTIN_KINDS:
        return stripped
    return _TYPING_KINDS.get(stripped)


def _dotted_text(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_text(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _value_type(
    program: ProgramModel,
    module: ModuleInfo,
    fn: FunctionInfo | None,
    expr: ast.expr,
) -> TypeRef | None:
    """Infer the type a value expression produces, where provable."""
    if isinstance(expr, (ast.List, ast.ListComp)):
        return ContainerType("list")
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return ContainerType("dict")
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return ContainerType("set")
    if isinstance(expr, ast.Tuple):
        return ContainerType("tuple")
    if isinstance(expr, (ast.JoinedStr, ast.FormattedValue)):
        return "str"
    if isinstance(expr, ast.Constant):
        kind = type(expr.value).__name__
        return kind if kind in _BUILTIN_KINDS else None
    if isinstance(expr, ast.Call):
        return _call_result_type(program, module, fn, expr)
    if isinstance(expr, ast.BoolOp):
        # The `x or default()` idiom: all branches must agree.
        branches = [_value_type(program, module, fn, v) for v in expr.values]
        return _merge_types(branches)
    if isinstance(expr, ast.IfExp):
        return _merge_types(
            [
                _value_type(program, module, fn, expr.body),
                _value_type(program, module, fn, expr.orelse),
            ]
        )
    if isinstance(expr, (ast.Name, ast.Attribute, ast.Subscript)) and fn is not None:
        return infer_expr_type(program, fn, expr)
    return None


def _merge_types(branches: list[TypeRef | None]) -> TypeRef | None:
    """The common type of several branches, or None if they disagree.
    ``None`` branches are ignored (the `x or default` idiom)."""
    known = [t for t in branches if t is not None]
    if not known:
        return None
    first = known[0]
    for other in known[1:]:
        if other == first:
            continue
        ka, kb = builtin_kind(first), builtin_kind(other)
        if ka is not None and ka == kb:
            # Same container kind; prefer the one with element types.
            if isinstance(other, ContainerType) and not isinstance(
                first, ContainerType
            ):
                first = other
            continue
        return None
    return first


def _call_result_type(
    program: ProgramModel,
    module: ModuleInfo,
    fn: FunctionInfo | None,
    call: ast.Call,
) -> TypeRef | None:
    origin = module.model.resolve_call(call)
    if origin in _BUILTIN_CTORS:
        return _BUILTIN_CTORS[origin]
    dotted = _dotted_text(call.func)
    if dotted is not None:
        symbol = _resolve_symbol(program, module, dotted)
        if isinstance(symbol, ClassInfo):
            return symbol
        if isinstance(symbol, FunctionInfo):
            returns = getattr(symbol.node, "returns", None)
            owner = program.modules.get(symbol.module)
            if returns is not None and owner is not None:
                return annotation_type(program, owner, returns)
            return None
        if symbol == EXTERNAL:
            return _EXTERNAL_INSTANCE
    if origin is not None:
        # A resolved stdlib call we have no constructor mapping for.
        return _EXTERNAL_INSTANCE
    if isinstance(call.func, ast.Attribute) and fn is not None:
        receiver = infer_expr_type(program, fn, call.func.value)
        kind = builtin_kind(receiver)
        if isinstance(receiver, ContainerType) and call.func.attr in (
            "get",
            "pop",
            "setdefault",
        ):
            return receiver.value
        if kind is not None:
            # A method call on a builtin/external value yields another
            # external value, not package state.
            return _EXTERNAL_INSTANCE
        cls = program.class_of(receiver)
        if cls is not None:
            method = cls.find_method(call.func.attr)
            if method is not None:
                returns = getattr(method.node, "returns", None)
                owner = program.modules.get(method.module)
                if returns is not None and owner is not None:
                    return annotation_type(program, owner, returns)
    return None


def function_local_types(
    program: ProgramModel, fn: FunctionInfo
) -> dict[str, TypeRef]:
    """Parameter/local name -> inferred type for *fn* (cached)."""
    if fn.local_types is not None:
        return fn.local_types
    module = program.modules[fn.module]
    env: dict[str, TypeRef] = {}
    poisoned: set[str] = set()
    args = fn.node.args
    ordered = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    if fn.cls is not None and ordered and ordered[0].arg in ("self", "cls"):
        env[ordered[0].arg] = fn.cls
        ordered = ordered[1:]
    for arg in ordered:
        inferred = annotation_type(program, module, arg.annotation)
        if inferred is not None:
            env[arg.arg] = inferred
    fn.local_types = env  # set before inference so recursion terminates

    def bind(name: str, inferred: TypeRef | None) -> None:
        if name in poisoned:
            return
        if inferred is None:
            if name in env:
                poisoned.add(name)
                env.pop(name, None)
            return
        current = env.get(name)
        if current is None:
            env[name] = inferred
        elif current != inferred:
            poisoned.add(name)
            env.pop(name, None)

    def bind_target(target: ast.expr, elem: TypeRef | None) -> None:
        if isinstance(target, ast.Name):
            bind(target.id, elem)
        elif isinstance(target, ast.Tuple):
            for i, elt in enumerate(target.elts):
                if isinstance(elt, ast.Name):
                    bind(elt.id, _tuple_elt_type(elem, i))

    for stmt in walk_scope(fn.node):
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            inferred = annotation_type(program, module, stmt.annotation)
            if inferred is not None:
                env[stmt.target.id] = inferred
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                bind(target.id, _value_type(program, module, fn, stmt.value))
            elif isinstance(target, ast.Tuple) and all(
                isinstance(elt, ast.Name) for elt in target.elts
            ):
                # `a, b = f()` with `-> tuple[A, B]` binds elementwise.
                value_t = _value_type(program, module, fn, stmt.value)
                for i, elt in enumerate(target.elts):
                    bind(elt.id, _tuple_elt_type(value_t, i))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            bind_target(stmt.target, _iteration_type(program, fn, stmt.iter))
        elif isinstance(stmt, ast.comprehension):
            # Comprehension variables technically live in their own scope,
            # but calls on them are resolved against this function's env.
            bind_target(stmt.target, _iteration_type(program, fn, stmt.iter))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    bind(item.optional_vars.id, None)
    return env


def _parent_function(
    program: ProgramModel, fn: FunctionInfo
) -> FunctionInfo | None:
    """The function *fn* is nested in, if any (for closure lookups)."""
    if "." not in fn.qualname:
        return None
    parent_qual = fn.qualname.rsplit(".", 1)[0]
    return program.functions.get(f"{fn.module}.{parent_qual}")


def lookup_local(
    program: ProgramModel, fn: FunctionInfo, name: str
) -> TypeRef | None:
    """*name* in *fn*'s env, falling back through enclosing functions
    (closure variables keep the type of their defining scope)."""
    probe: FunctionInfo | None = fn
    while probe is not None:
        env = function_local_types(program, probe)
        if name in env:
            return env[name]
        probe = _parent_function(program, probe)
    return None


def _iteration_type(
    program: ProgramModel, fn: FunctionInfo, iter_expr: ast.expr
) -> TypeRef | None:
    """What iterating *iter_expr* yields, where provable."""
    if isinstance(iter_expr, ast.Call) and isinstance(
        iter_expr.func, ast.Attribute
    ):
        receiver = infer_expr_type(program, fn, iter_expr.func.value)
        if isinstance(receiver, ContainerType) and receiver.kind == "dict":
            attr = iter_expr.func.attr
            if attr == "items":
                return ContainerType(
                    "tuple", elem=receiver.elem, value=receiver.value
                )
            if attr == "keys":
                return receiver.elem
            if attr == "values":
                return receiver.value
    if isinstance(iter_expr, ast.Call):
        origin = fn.model.resolve_call(iter_expr)
        if origin in ("builtins.sorted", "builtins.list", "builtins.tuple"):
            if iter_expr.args:
                return _iteration_type(program, fn, iter_expr.args[0])
            return None
        if origin == "builtins.enumerate" and iter_expr.args:
            inner = _iteration_type(program, fn, iter_expr.args[0])
            return ContainerType("tuple", elem="int", value=inner)
    inferred = infer_expr_type(program, fn, iter_expr)
    if isinstance(inferred, ContainerType):
        return inferred.elem
    if builtin_kind(inferred) is not None:
        return _EXTERNAL_INSTANCE if inferred != "str" else "str"
    return None


def _tuple_elt_type(elem: TypeRef | None, index: int) -> TypeRef | None:
    """Element *index* of an unpacked tuple (items()/enumerate style)."""
    if isinstance(elem, ContainerType) and elem.kind == "tuple":
        if elem.elts is not None:
            return elem.elts[index] if index < len(elem.elts) else None
        return elem.elem if index == 0 else elem.value if index == 1 else None
    return None


def infer_expr_type(
    program: ProgramModel, fn: FunctionInfo, expr: ast.expr
) -> TypeRef | None:
    """The type of *expr* inside *fn*, where provable."""
    module = program.modules[fn.module]
    if isinstance(expr, ast.Name):
        local = lookup_local(program, fn, expr.id)
        if local is not None:
            return local
        if expr.id in module.global_types:
            return module.global_types[expr.id]
        return _imported_global_type(program, module, expr.id)
    if isinstance(expr, ast.Attribute):
        base = infer_expr_type(program, fn, expr.value)
        cls = program.class_of(base)
        if cls is not None:
            return program.virtual_attr_type(cls, expr.attr)
        if builtin_kind(base) is not None:
            # An attribute of an external/builtin value is itself external.
            return _EXTERNAL_INSTANCE
        dotted = _dotted_text(expr)
        if dotted is not None:
            symbol = _resolve_symbol(program, module, dotted)
            if symbol == EXTERNAL:
                return _EXTERNAL_INSTANCE
        return None
    if isinstance(expr, ast.Subscript):
        base = infer_expr_type(program, fn, expr.value)
        if isinstance(expr.slice, ast.Slice):
            return base  # a slice keeps the container type
        if isinstance(base, ContainerType):
            if base.kind == "dict":
                return base.value
            if base.kind == "tuple" and base.elts is not None:
                if (
                    isinstance(expr.slice, ast.Constant)
                    and isinstance(expr.slice.value, int)
                    and 0 <= expr.slice.value < len(base.elts)
                ):
                    return base.elts[expr.slice.value]
                return None
            return base.elem
        if base == _EXTERNAL_INSTANCE or base in ("str", "bytes"):
            return _EXTERNAL_INSTANCE
        return None
    return _value_type(program, module, fn, expr)


def _imported_global_type(
    program: ProgramModel, module: ModuleInfo, name: str
) -> TypeRef | None:
    """The inferred type of a module-level value imported from another
    package module (`from repro.core.fields import GLOBAL_FIELD_BITS`)."""
    target = module.imports.get(name)
    if target is None or not program.in_package(target):
        return None
    owner_fqn, _, member = target.rpartition(".")
    owner = program.modules.get(owner_fqn)
    if owner is not None:
        return owner.global_types.get(member)
    return None


def _collect_module_global_types(program: ProgramModel) -> None:
    for info in program.modules.values():
        for stmt in info.model.tree.body:
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value, ann = stmt.targets[0], stmt.value, None
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value, ann = stmt.target, stmt.value, stmt.annotation
            else:
                continue
            if not isinstance(target, ast.Name):
                continue
            if ann is not None:
                inferred = annotation_type(program, info, ann)
            elif isinstance(value, (ast.Name, ast.Attribute)):
                # Module-level alias: `Rng = random.Random`.
                dotted = _dotted_text(value)
                symbol = (
                    _resolve_symbol(program, info, dotted) if dotted else None
                )
                if isinstance(symbol, (ClassInfo, FunctionInfo)):
                    continue  # a callable alias, not an instance
                inferred = _EXTERNAL_INSTANCE if symbol == EXTERNAL else None
            else:
                inferred = _value_type(program, info, None, value)
            if inferred is not None:
                info.global_types.setdefault(target.id, inferred)


def _collect_class_attr_types(program: ProgramModel) -> None:
    for cls in program.classes.values():
        module = program.modules[cls.module]
        # Dataclass fields / annotated or assigned class attributes.
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                cls.attr_types[stmt.target.id] = annotation_type(
                    program, module, stmt.annotation
                )
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    cls.attr_types.setdefault(
                        target.id,
                        _value_type(program, module, None, stmt.value),
                    )
        # `self.x = ...` / `self.x: T = ...` in every method.
        for method in list(cls.methods.values()):
            args = method.node.args
            ordered = [*args.posonlyargs, *args.args]
            self_name = ordered[0].arg if ordered else None
            if self_name is None:
                continue
            for stmt in walk_scope(method.node):
                target = None
                ann = None
                value = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value, ann = stmt.target, stmt.value, stmt.annotation
                else:
                    continue
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name
                ):
                    continue
                if ann is not None:
                    inferred = annotation_type(program, module, ann)
                elif value is not None:
                    inferred = _value_type(program, module, method, value)
                else:
                    inferred = None
                if target.attr not in cls.attr_types:
                    cls.attr_types[target.attr] = inferred
                elif ann is not None and inferred is not None:
                    cls.attr_types[target.attr] = inferred


def _refine_container_attrs(program: ProgramModel) -> None:
    """Give element types to attrs initialized as empty containers by
    looking at what the class's own methods put into them
    (``self.xs.append(Edge(...))``, ``self.by_id[k] = Link(...)``)."""
    conflicted: set[tuple[str, str]] = set()
    refined: set[tuple[str, str]] = set()

    def refine(cls: ClassInfo, attr: str, new: ContainerType) -> None:
        """Fill missing element slots only.  A slot typed by annotation is
        authoritative; disagreeing *refinements* clear the slot again."""
        key = (cls.fqn, attr)
        if key in conflicted:
            return
        current = cls.attr_types.get(attr)
        if not isinstance(current, ContainerType):
            return
        if current.elem is None and current.value is None:
            cls.attr_types[attr] = ContainerType(
                current.kind, elem=new.elem, value=new.value
            )
            refined.add(key)
            return
        if key not in refined:
            return  # annotated — leave it alone
        if (new.elem and current.elem and new.elem != current.elem) or (
            new.value and current.value and new.value != current.value
        ):
            conflicted.add(key)
            cls.attr_types[attr] = ContainerType(current.kind)
            return
        cls.attr_types[attr] = ContainerType(
            current.kind,
            elem=current.elem or new.elem,
            value=current.value or new.value,
        )

    for cls in program.classes.values():
        module = program.modules[cls.module]
        for method in cls.methods.values():
            args = method.node.args
            ordered = [*args.posonlyargs, *args.args]
            if not ordered:
                continue
            self_name = ordered[0].arg
            for node in walk_scope(method.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("append", "add", "appendleft")
                    and node.args
                    and isinstance(node.func.value, ast.Attribute)
                    and isinstance(node.func.value.value, ast.Name)
                    and node.func.value.value.id == self_name
                ):
                    elem = _value_type(program, module, method, node.args[0])
                    if elem is not None:
                        refine(
                            cls,
                            node.func.value.attr,
                            ContainerType("list", elem=elem),
                        )
                elif (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Subscript)
                ):
                    sub = node.targets[0]
                    if (
                        isinstance(sub.value, ast.Attribute)
                        and isinstance(sub.value.value, ast.Name)
                        and sub.value.value.id == self_name
                    ):
                        key_t = _value_type(program, module, method, sub.slice)
                        val_t = _value_type(program, module, method, node.value)
                        if key_t is not None or val_t is not None:
                            refine(
                                cls,
                                sub.value.attr,
                                ContainerType("dict", elem=key_t, value=val_t),
                            )


def _resolve_bases(program: ProgramModel) -> None:
    for cls in program.classes.values():
        module = program.modules[cls.module]
        for base in cls.base_exprs:
            dotted = _dotted_text(base)
            if dotted is None:
                continue
            symbol = _resolve_symbol(program, module, dotted)
            if isinstance(symbol, ClassInfo):
                cls.bases.append(symbol)


# --------------------------------------------------------------------- #
# Scope-local AST walking                                               #
# --------------------------------------------------------------------- #


def walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk *root*'s AST without descending into nested function/class
    definitions.  Lambda bodies are included: a lambda's effects belong to
    the function that created (and almost always runs) it."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (*_FUNC_NODES, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# --------------------------------------------------------------------- #
# Call-site resolution                                                  #
# --------------------------------------------------------------------- #


def _callee_text(node: ast.expr) -> str:
    dotted = _dotted_text(node)
    if dotted is not None:
        return dotted
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


def _is_super_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "super"
    )


def _constructor_edge(
    caller: str, cls: ClassInfo, call: ast.Call, text: str
) -> CallEdge:
    init = cls.find_method("__init__")
    target = init.fqn if init is not None else cls.fqn
    # A dataclass or default __init__ resolves to the class itself.
    return CallEdge(
        caller, RESOLVED, target, None, call.lineno, call.col_offset, text
    )


def resolve_call_site(
    program: ProgramModel, fn: FunctionInfo, call: ast.Call
) -> list[CallEdge]:
    """Classify one call site.  Usually one edge; a polymorphic method
    call on a base-typed receiver yields one edge per override."""
    module = program.modules[fn.module]
    func = call.func
    text = _callee_text(func)

    def edge(status, target=None, reason=None):
        return [
            CallEdge(
                fn.fqn, status, target, reason, call.lineno, call.col_offset, text
            )
        ]

    if isinstance(func, ast.Name):
        if func.id == "super":
            return edge(EXTERNAL)
        local = lookup_local(program, fn, func.id)
        if local is not None:
            if builtin_kind(local) is not None:
                return edge(EXTERNAL)
            return edge(UNRESOLVED, reason="call-on-instance")
        symbol = _resolve_symbol(program, module, func.id)
        if isinstance(symbol, FunctionInfo):
            return edge(RESOLVED, symbol.fqn)
        if isinstance(symbol, ClassInfo):
            return [_constructor_edge(fn.fqn, symbol, call, text)]
        if symbol == EXTERNAL:
            return edge(EXTERNAL)
        # A function nested in this one, or a sibling nested function?
        nested = program.functions.get(f"{fn.fqn}.{func.id}")
        if nested is not None:
            return edge(RESOLVED, nested.fqn)
        parent_qual = fn.qualname.rsplit(".", 1)[0] if "." in fn.qualname else ""
        if parent_qual:
            sibling = program.functions.get(
                f"{fn.module}.{parent_qual}.{func.id}"
            )
            if sibling is not None:
                return edge(RESOLVED, sibling.fqn)
        return edge(UNRESOLVED, reason="dynamic-callable")

    if isinstance(func, ast.Attribute):
        # super().m()
        if _is_super_call(func.value):
            if fn.cls is not None:
                for base in fn.cls.bases:
                    method = base.find_method(func.attr)
                    if method is not None:
                        return edge(RESOLVED, method.fqn)
            return edge(UNRESOLVED, reason="super-unresolved")
        dotted = _dotted_text(func)
        if dotted is not None:
            symbol = _resolve_symbol(program, module, dotted)
            if isinstance(symbol, FunctionInfo):
                return edge(RESOLVED, symbol.fqn)
            if isinstance(symbol, ClassInfo):
                return [_constructor_edge(fn.fqn, symbol, call, text)]
            if symbol == EXTERNAL:
                return edge(EXTERNAL)
        receiver = infer_expr_type(program, fn, func.value)
        if builtin_kind(receiver) is not None:
            return edge(EXTERNAL)  # builtin container / external instance
        cls = program.class_of(receiver)
        if cls is not None:
            methods = program.virtual_methods(cls, func.attr)
            if methods:
                return [
                    CallEdge(
                        fn.fqn,
                        RESOLVED,
                        m.fqn,
                        None,
                        call.lineno,
                        call.col_offset,
                        text,
                    )
                    for m in methods
                ]
            attr_ref = program.virtual_attr_type(cls, func.attr)
            if builtin_kind(attr_ref) is not None:
                return edge(EXTERNAL)
            return edge(UNRESOLVED, reason="unknown-method")
        origin = fn.model.resolve_call(call)
        if origin is not None:
            return edge(EXTERNAL)  # stdlib via the walker's aliases
        if func.attr not in program.method_names():
            # No package class defines a method with this name, so the
            # call cannot land on package code whatever the receiver is.
            return edge(EXTERNAL)
        return edge(UNRESOLVED, reason="unknown-receiver")

    return edge(UNRESOLVED, reason="dynamic-callable")


def _callback_edges(
    program: ProgramModel, fn: FunctionInfo, call: ast.Call
) -> list[CallEdge]:
    """Function references passed as arguments become callback edges."""
    module = program.modules[fn.module]
    out: list[CallEdge] = []
    for arg in [*call.args, *(kw.value for kw in call.keywords)]:
        target: FunctionInfo | None = None
        if isinstance(arg, (ast.Name, ast.Attribute)):
            dotted = _dotted_text(arg)
            if dotted is not None:
                symbol = _resolve_symbol(program, module, dotted)
                if isinstance(symbol, FunctionInfo):
                    target = symbol
            if target is None and isinstance(arg, ast.Attribute):
                receiver = infer_expr_type(program, fn, arg.value)
                cls = program.class_of(receiver)
                if cls is not None:
                    target = cls.find_method(arg.attr)
        if target is not None:
            out.append(
                CallEdge(
                    fn.fqn,
                    RESOLVED,
                    target.fqn,
                    None,
                    arg.lineno,
                    arg.col_offset,
                    _callee_text(arg),
                    callback=True,
                )
            )
    return out


def build_program(models: list[ModuleModel]) -> ProgramModel:
    """Index *models*, infer types, and resolve every call site."""
    program = ProgramModel(models=models)
    for model in models:
        info = _index_module(model, program)
        program.modules[info.fqn] = info
        program.models_by_path[model.relpath] = model
    _link_methods(program)
    _resolve_bases(program)
    _collect_module_global_types(program)
    _collect_class_attr_types(program)
    _refine_container_attrs(program)
    for fn in program.functions.values():
        edges: list[CallEdge] = []
        for node in walk_scope(fn.node):
            if isinstance(node, ast.Call):
                edges.extend(resolve_call_site(program, fn, node))
                edges.extend(_callback_edges(program, fn, node))
        program.edges[fn.fqn] = edges
    return program
