"""Baseline files: permit intentional findings, fail only on new ones.

A baseline entry identifies a finding by ``(rule, path, scope, code)`` —
the stripped source line rather than a line number, so entries survive
unrelated edits above them.  ``count`` allows N occurrences of the same
key (e.g. two identical registry mutations in one function).

The CI contract: ``smartsouth sancheck`` exits 1 iff a finding is neither
suppressed in-source nor covered by the committed baseline.  Entries no
finding matched are reported as *stale* so the baseline only ever shrinks.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.static.findings import SanFinding, replace

#: The committed baselines' filenames, discovered by walking up from the
#: scan root (so they live at the repo root, beside pyproject.toml).
BASELINE_NAME = "sancheck-baseline.json"
SHARD_BASELINE_NAME = "shardcheck-baseline.json"

_KEY_FIELDS = ("rule", "path", "scope", "code")


def discover_baseline(start: Path, name: str = BASELINE_NAME) -> Path | None:
    """The nearest baseline file called *name* at or above *start*."""
    start = start.resolve()
    for candidate in [start, *start.parents]:
        path = candidate / name
        if path.is_file():
            return path
    return None


def load_baseline(path: Path) -> dict[tuple[str, str, str, str], int]:
    """key -> allowed occurrence count."""
    data = json.loads(Path(path).read_text())
    allowance: dict[tuple[str, str, str, str], int] = {}
    for entry in data.get("findings", []):
        key = tuple(entry[field] for field in _KEY_FIELDS)
        allowance[key] = allowance.get(key, 0) + int(entry.get("count", 1))
    return allowance


def write_baseline(path: Path, findings: list[SanFinding]) -> dict:
    """Write every unsuppressed finding as a permitted baseline entry."""
    counts: dict[tuple[str, str, str, str], int] = {}
    for finding in findings:
        if finding.suppressed:
            continue
        counts[finding.key()] = counts.get(finding.key(), 0) + 1
    payload = {
        "_comment": (
            "Permitted sancheck findings. CI fails only on findings absent "
            "from this file; prune entries as the sites are fixed. "
            "Regenerate with: smartsouth sancheck --write-baseline"
        ),
        "version": 1,
        "findings": [
            {
                "rule": rule,
                "path": rel,
                "scope": scope,
                "code": code,
                "count": count,
            }
            for (rule, rel, scope, code), count in sorted(counts.items())
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def apply_baseline(
    findings: list[SanFinding],
    allowance: dict[tuple[str, str, str, str], int],
) -> tuple[list[SanFinding], list[dict]]:
    """Mark findings covered by *allowance*; report unmatched (stale) entries.

    Returns ``(findings, stale)`` where stale entries are baseline keys
    with remaining allowance — sites that were fixed but not pruned.
    """
    remaining = dict(allowance)
    out: list[SanFinding] = []
    for finding in findings:
        key = finding.key()
        if not finding.suppressed and remaining.get(key, 0) > 0:
            remaining[key] -= 1
            finding = replace(finding, baselined=True)
        out.append(finding)
    stale = [
        {
            "rule": rule,
            "path": rel,
            "scope": scope,
            "code": code,
            "count": count,
        }
        for (rule, rel, scope, code), count in sorted(remaining.items())
        if count > 0
    ]
    return out, stale


def prune_baseline(path: Path, findings: list[SanFinding]) -> tuple[int, int]:
    """Drop baseline entries no current finding matches; shrink counts.

    The ratchet operation behind ``--prune-baseline``: every entry keeps
    at most as much allowance as the scan still needs, so fixing a site
    and pruning makes the fix permanent.  Returns ``(kept, dropped)``
    where both count *occurrences* (an entry with ``count: 2`` matched
    once is one kept, one dropped).
    """
    path = Path(path)
    allowance = load_baseline(path)
    needed: dict[tuple[str, str, str, str], int] = {}
    for finding in findings:
        if finding.suppressed:
            continue
        key = finding.key()
        needed[key] = needed.get(key, 0) + 1
    kept = 0
    dropped = 0
    survivors: list[SanFinding] = []
    for (rule, rel, scope, code), count in sorted(allowance.items()):
        keep = min(count, needed.get((rule, rel, scope, code), 0))
        kept += keep
        dropped += count - keep
        for _ in range(keep):
            survivors.append(
                SanFinding(
                    rule=rule,
                    name="",
                    severity="error",
                    message="",
                    path=rel,
                    line=0,
                    col=0,
                    scope=scope,
                    code=code,
                )
            )
    write_baseline(path, survivors)
    return kept, dropped
