"""Analysis tools: graph algorithms, Table 2 closed forms, rule verification."""

from repro.analysis.complexity import (
    dfs_message_count,
    table2,
    table2_row,
)
from repro.analysis.graph import (
    articulation_points,
    connected_components,
    dfs_edge_order,
    spanning_tree,
)
from repro.analysis.verify import VerificationReport, verify_switch

__all__ = [
    "VerificationReport",
    "articulation_points",
    "connected_components",
    "dfs_edge_order",
    "dfs_message_count",
    "spanning_tree",
    "table2",
    "table2_row",
    "verify_switch",
]
