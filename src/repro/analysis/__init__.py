"""Analysis tools: graph algorithms, Table 2 closed forms, symbolic
header-space analysis, lint rules, rule-set verification, stateful
model checking with replayable counterexamples, and the determinism &
shared-state sanitizer over the repro source itself
(:mod:`repro.analysis.static`, kept out of this namespace so importing
the analysis layer does not drag in the scenario runner)."""

from repro.analysis.complexity import (
    dfs_message_count,
    table2,
    table2_row,
)
from repro.analysis.graph import (
    articulation_points,
    connected_components,
    dfs_edge_order,
    spanning_tree,
)
from repro.analysis.lint import (
    LINT_RULES,
    LintConfig,
    LintFinding,
    LintReport,
    lint_engine,
    lint_rule,
    run_lint,
)
from repro.analysis.modelcheck import (
    INVARIANTS,
    CheckConfig,
    CheckReport,
    Counterexample,
    Scenario,
    Violation,
    check_engine,
    invariant,
    run_check,
    scenarios_for,
)
from repro.analysis.replay import (
    ReplayResult,
    confirms_violation,
    replay_counterexample,
)
from repro.analysis.symbolic import (
    Cube,
    SwitchAnalyzer,
    WalkResult,
    walk_network,
)
from repro.analysis.verify import (
    VerificationReport,
    verify_engine,
    verify_switch,
)

__all__ = [
    "CheckConfig",
    "CheckReport",
    "Counterexample",
    "Cube",
    "INVARIANTS",
    "LINT_RULES",
    "LintConfig",
    "LintFinding",
    "LintReport",
    "ReplayResult",
    "Scenario",
    "SwitchAnalyzer",
    "VerificationReport",
    "Violation",
    "WalkResult",
    "articulation_points",
    "check_engine",
    "confirms_violation",
    "connected_components",
    "dfs_edge_order",
    "dfs_message_count",
    "invariant",
    "lint_engine",
    "lint_rule",
    "replay_counterexample",
    "run_check",
    "run_lint",
    "scenarios_for",
    "spanning_tree",
    "table2",
    "table2_row",
    "verify_engine",
    "verify_switch",
    "walk_network",
]
