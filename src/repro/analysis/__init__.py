"""Analysis tools: graph algorithms, Table 2 closed forms, symbolic
header-space analysis, lint rules, and rule-set verification."""

from repro.analysis.complexity import (
    dfs_message_count,
    table2,
    table2_row,
)
from repro.analysis.graph import (
    articulation_points,
    connected_components,
    dfs_edge_order,
    spanning_tree,
)
from repro.analysis.lint import (
    LINT_RULES,
    LintConfig,
    LintFinding,
    LintReport,
    lint_engine,
    lint_rule,
    run_lint,
)
from repro.analysis.symbolic import (
    Cube,
    SwitchAnalyzer,
    WalkResult,
    walk_network,
)
from repro.analysis.verify import (
    VerificationReport,
    verify_engine,
    verify_switch,
)

__all__ = [
    "Cube",
    "LINT_RULES",
    "LintConfig",
    "LintFinding",
    "LintReport",
    "SwitchAnalyzer",
    "VerificationReport",
    "WalkResult",
    "articulation_points",
    "connected_components",
    "dfs_edge_order",
    "dfs_message_count",
    "lint_engine",
    "lint_rule",
    "run_lint",
    "spanning_tree",
    "table2",
    "table2_row",
    "verify_engine",
    "verify_switch",
    "walk_network",
]
