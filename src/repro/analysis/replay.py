"""Replay model-checker counterexamples in the discrete-event simulator.

A :class:`~repro.analysis.modelcheck.Counterexample` is an *action trace*:
trigger injections, link failures and packet steps.  Because both the
checker and the simulator count time in **packet steps** (pipeline
executions — see :meth:`Network.at_packet_step`), the trace converts
directly into a deterministic simulator schedule:

* ``("fail", e)`` after *k* step actions →
  :func:`~repro.net.failures.fail_edge_after_steps` at step *k*;
* ``("inject", i)`` after *k* step actions → ``engine.trigger(run=False)``
  immediately (*k* = 0) or hooked at packet step *k*;
* blackholes from the scenario → ``link.set_blackhole()`` before anything
  moves (a blackhole looks *up* to fast-failover, so it never changes the
  schedule — it only swallows).

After the scheduled prefix the simulator simply runs to quiescence, which
mirrors the checker's deterministic trace closure.  The replay then asks:
*does the simulator exhibit the same violation?*  For terminal-scope
invariants this is literal: the simulator's observables (controller
reports, local deliveries, dead-port/swallow losses, final live-link set)
are packed into a synthetic terminal :class:`GlobalState` and judged by the
**same** invariant implementations the checker used — a differential
cross-check between the symbolic stepper and :meth:`Switch.process`, not a
reimplementation of the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable

from repro.analysis.modelcheck import (
    INVARIANTS,
    Counterexample,
    GlobalState,
    ModelContext,
    Scenario,
    hop_bound,
)
from repro.analysis.symbolic import FieldWidths
from repro.core.engine import make_engine
from repro.core.smart_counter import counter_bucket_value
from repro.net.failures import fail_edge_after_steps
from repro.net.simulator import Network, SimulationLimitError
from repro.net.topology import Topology
from repro.net.trace import EventKind
from repro.openflow.errors import OpenFlowError
from repro.openflow.group import GroupType
from repro.openflow.packet import Packet

#: Event budget for one replay; generous, but a rule loop hits it fast.
DEFAULT_REPLAY_EVENTS = 200_000


def _observe_packet(packet: Packet) -> tuple:
    """The checker's report/delivery observable: sorted nonzero fields."""
    return tuple(sorted((k, v) for k, v in packet.fields.items() if v))


@dataclass
class ReplayResult:
    """Everything one simulator replay produced."""

    scenario: Scenario
    #: (node, ((field, value), ...), stack) — the checker's report shape.
    reports: list[tuple] = dataclass_field(default_factory=list)
    #: (node, ((field, value), ...)) — the checker's delivery shape.
    deliveries: list[tuple] = dataclass_field(default_factory=list)
    dead_ports: int = 0
    swallowed: int = 0
    packet_steps: int = 0
    looped: bool = False
    pipeline_error: str | None = None
    live: frozenset[int] = frozenset()
    network: Network | None = None
    engine: object | None = None

    def terminal_state(self) -> GlobalState:
        """Pack the observables into a checker-shaped terminal state."""
        losses = []
        losses.extend(("dead_port", -1, 0, -1) for _ in range(self.dead_ports))
        losses.extend(("swallowed", -1, 0, -1) for _ in range(self.swallowed))
        if self.looped or self.pipeline_error:
            # The run never went quiescent; count it as an in-flight loss so
            # completion invariants do not judge a truncated run.
            losses.append(("dead_port", -1, 0, -1))
        return GlobalState(
            packets=(),
            live=self.live,
            cursors=(),
            failures_left=0,
            next_trigger=len(self.scenario.triggers),
            extra_left=0,
            next_pid=0,
            reports=tuple(self.reports),
            deliveries=tuple(self.deliveries),
            losses=tuple(losses),
        )


def replay_counterexample(
    counterexample: Counterexample,
    topology: Topology,
    service,
    mutate: Callable | None = None,
    max_events: int = DEFAULT_REPLAY_EVENTS,
) -> ReplayResult:
    """Execute *counterexample*'s trace as a deterministic simulator run.

    *mutate*, when given, receives the freshly-installed compiled engine —
    the same fault-injection hook the checker's callers use, so a seeded
    rule fault is applied identically on both sides of the differential
    check.
    """
    scenario = counterexample.scenario
    if any(a[0] == "crash" for a in counterexample.trace):
        # Controller-crash traces (MC010) drive the origin epoch gate,
        # which the simulator replay does not model yet; refusing beats a
        # silently-divergent replay.
        raise ValueError(
            "crash counterexamples are not replayable; inspect the trace "
            "with Counterexample.format() instead"
        )
    network = Network(topology)
    engine = make_engine(network, service, "compiled")
    engine.install()
    if mutate is not None:
        mutate(engine)
    for edge_id in scenario.blackholes:
        network.links[edge_id].set_blackhole()

    steps = 0
    for action in counterexample.trace:
        kind = action[0]
        if kind == "step":
            steps += 1
        elif kind == "fail":
            fail_edge_after_steps(network, action[1], steps)
        elif kind in ("inject", "inject-extra"):
            index = action[1] if kind == "inject" else 0
            spec = scenario.triggers[index]

            def _inject(spec=spec):
                engine.trigger(
                    spec.root,
                    spec.field_dict(),
                    from_controller=True,
                    run=False,
                )

            if steps == 0:
                _inject()
            else:
                network.at_packet_step(steps, _inject)
    if not any(a[0] in ("inject", "inject-extra") for a in counterexample.trace):
        # A purely-terminal counterexample (e.g. a pre-traversal failure
        # branch minimized down to nothing): still run the triggers.
        for spec in scenario.triggers:
            engine.trigger(
                spec.root, spec.field_dict(), from_controller=True, run=False
            )

    result = ReplayResult(scenario=scenario, network=network, engine=engine)
    try:
        network.run(max_events=max_events)
    except SimulationLimitError:
        result.looped = True
    except OpenFlowError as exc:
        result.pipeline_error = f"{type(exc).__name__}: {exc}"

    result.reports = [
        (node, _observe_packet(packet), tuple(packet.stack))
        for node, packet in engine.reports
    ]
    result.deliveries = [
        (node, _observe_packet(packet)) for node, packet in engine.deliveries
    ]
    result.dead_ports = network.trace.count(EventKind.DEAD_PORT)
    result.swallowed = network.trace.count(EventKind.DROP)
    result.packet_steps = network.packet_steps
    result.live = frozenset(
        link.edge.edge_id for link in network.links if link.up
    )
    return result


#: Invariants whose violation the simulator confirms via the shared
#: terminal-state oracle.
_TERMINAL_IDS = frozenset({"MC002T", "MC004", "MC005", "MC007"})


def confirms_violation(
    result: ReplayResult,
    counterexample: Counterexample,
    topology: Topology,
    service,
) -> tuple[bool, str]:
    """Does the replay exhibit the counterexample's violation?

    Returns ``(confirmed, evidence)`` where *evidence* is a one-line
    human-readable justification (or the reason confirmation failed).
    """
    violation = counterexample.violation
    inv_id = violation.invariant

    if inv_id in _TERMINAL_IDS:
        switches = getattr(result.engine, "switches", {})
        widths = FieldWidths.for_switches(switches.values())
        ctx = ModelContext(topology, service, result.scenario, widths)
        state = result.terminal_state()
        found = [
            v
            for v in INVARIANTS[inv_id].check(ctx, state)
            if v.invariant == inv_id
        ]
        if found:
            return True, f"simulator observables violate: {found[0].message}"
        return False, "simulator observables satisfy the invariant"

    if inv_id == "MC001":
        bound = hop_bound(service.name, topology)
        budget = bound + 2 * len(result.scenario.triggers) + 4
        if result.looped:
            return True, "simulator hit its event budget (forwarding loop)"
        if result.pipeline_error and "PipelineError" in result.pipeline_error:
            return True, f"pipeline looped: {result.pipeline_error}"
        if result.packet_steps > budget:
            return (
                True,
                f"{result.packet_steps} packet steps exceed the "
                f"{budget}-step budget",
            )
        return False, f"run quiesced in {result.packet_steps} steps"

    if inv_id == "MC002":
        # Pops on an empty stack are silent in the simulator; their effect
        # is a record-starved final stream — judged by the terminal oracle.
        from repro.analysis.modelcheck import _duplicate_link_records
        from repro.core.services.snapshot import (
            SnapshotDecodeError,
            decode_snapshot,
        )

        for node, _fields, stack in result.reports:
            if _duplicate_link_records(stack):
                return True, f"duplicate edge record in report from {node}"
            try:
                decode_snapshot(list(stack))
            except SnapshotDecodeError as exc:
                return True, f"malformed record stream: {exc}"
        return False, "all simulator record streams decode cleanly"

    if inv_id == "MC003":
        switches = getattr(result.engine, "switches", {})
        for node, switch in switches.items():
            for group in switch.groups.groups():
                if group.group_type is not GroupType.SELECT:
                    continue
                for index in range(len(group.buckets)):
                    value = counter_bucket_value(group, index)
                    if value != index:
                        return (
                            True,
                            f"node {node} group {group.group_id} bucket "
                            f"{index} writes {value}",
                        )
        return False, "every SELECT bucket writes its own index"

    if inv_id == "MC006":
        if result.dead_ports:
            return (
                True,
                f"simulator recorded {result.dead_ports} dead-port "
                f"emission(s)",
            )
        return False, "no dead-port emission in the simulator trace"

    if inv_id == "MC008":
        if result.pipeline_error:
            return True, f"pipeline raised: {result.pipeline_error}"
        return False, "no pipeline execution error in the simulator"

    return False, f"no simulator oracle for invariant {inv_id}"
