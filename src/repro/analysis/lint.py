"""Pluggable lint framework over the symbolic pipeline engine.

Each check is a :func:`lint_rule`-decorated generator that inspects a
:class:`LintContext` (compiled switches + topology + optional service) and
yields :class:`LintFinding` objects.  Rules are identified by stable ids
(``SS001`` ...) so CI consumers and suppression lists survive refactors; see
``docs/LINTING.md`` for the catalogue and the paper property each encodes.

The built-in rules come in two flavours:

* **structural** rules (dangling gotos, missing groups, ambiguous
  same-priority overlaps) read the rule sets directly;
* **semantic** rules (dead rules, shadowing, table-miss reachability, sweep
  coverage) query the header-space engine in
  :mod:`repro.analysis.symbolic` — per-switch "any arrival" propagation for
  local reachability and whole-network trigger walks for the paper's
  DFS-covers-all-edges property.

Use :func:`run_lint` on a compiled switch set, or ``smartsouth lint`` from
the command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping

from repro.analysis.symbolic import (
    DEFAULT_WALK_BUDGET,
    FieldWidths,
    SwitchAnalyzer,
    WalkResult,
    walk_network,
)
from repro.net.topology import Topology
from repro.openflow.actions import GroupAction, SetField
from repro.openflow.switch import Switch

if TYPE_CHECKING:
    from repro.core.engine import CompiledEngine

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"
_SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_INFO)

#: Fields a service writes purely for the controller's benefit (report
#: payload): never matched by any rule, so SS004 must not flag them.
REPORT_ONLY_FIELDS = frozenset(
    {"bh", "report_in", "report_port", "snapdone", "crit", "opt_val", "opt_id"}
)
#: Prefixes of report-only field families (snapshot record slots).
REPORT_ONLY_PREFIXES = ("rec",)


# --------------------------------------------------------------------- #
# Findings, rules, registry                                             #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnosis, ready for text or JSON rendering."""

    rule: str
    name: str
    severity: str
    message: str
    node: int | None = None
    table: int | None = None
    cookie: str | None = None
    fix_hint: str | None = None

    def to_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "message": self.message,
        }
        for key in ("node", "table", "cookie", "fix_hint"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    def format(self) -> str:
        where = []
        if self.node is not None:
            where.append(f"node {self.node}")
        if self.table is not None:
            where.append(f"table {self.table}")
        if self.cookie:
            where.append(repr(self.cookie))
        location = " ".join(where)
        line = f"{self.severity}[{self.rule}] {location}: {self.message}"
        if self.fix_hint:
            line += f"\n    hint: {self.fix_hint}"
        return line


@dataclass(frozen=True)
class LintRule:
    """A registered check: metadata plus the generator implementing it."""

    rule_id: str
    name: str
    severity: str
    doc: str
    fix_hint: str
    func: Callable[["LintContext", "LintRule"], Iterator[LintFinding]]

    def finding(self, message: str, **location) -> LintFinding:
        """Build a finding carrying this rule's id/name/severity/hint."""
        return LintFinding(
            rule=self.rule_id,
            name=self.name,
            severity=self.severity,
            message=message,
            fix_hint=location.pop("fix_hint", self.fix_hint),
            **location,
        )


#: rule id -> LintRule, in registration order.
LINT_RULES: dict[str, LintRule] = {}


def lint_rule(
    rule_id: str, name: str, severity: str, fix_hint: str = ""
) -> Callable:
    """Register a lint check.

    The decorated generator receives ``(ctx, rule)`` and yields findings —
    usually via ``rule.finding(...)`` so id/severity stay consistent.
    Third-party rules register the same way; ids outside the built-in
    ``SS``-prefix namespace are reserved for extensions.
    """
    if severity not in _SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def register(func):
        if rule_id in LINT_RULES:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        # repro: allow[RACE001] import-time rule registration, frozen before use
        LINT_RULES[rule_id] = LintRule(
            rule_id=rule_id,
            name=name,
            severity=severity,
            doc=(func.__doc__ or "").strip(),
            fix_hint=fix_hint,
            func=func,
        )
        return func

    return register


@dataclass(frozen=True)
class LintConfig:
    """Knobs for one lint run (CLI flags map straight onto these)."""

    disable: frozenset[str] = frozenset()
    severity_overrides: Mapping[str, str] = dataclass_field(
        default_factory=dict
    )
    max_states: int = DEFAULT_WALK_BUDGET
    #: Roots to walk from; None walks from every node.
    roots: tuple[int, ...] | None = None


# --------------------------------------------------------------------- #
# Per-service trigger classes                                           #
# --------------------------------------------------------------------- #


def trigger_classes(service) -> tuple[list[dict[str, int | None]], bool]:
    """The symbolic trigger-packet classes to walk for *service*, plus
    whether the failure-free traversal must sweep every physical port.

    A ``None`` field value frees the field (the walk then covers every
    concrete value at once).  Services that legitimately stop early get a
    False flag: anycast delivers at the first member, and critical reports
    its verdict at the first second-child return without finishing the
    sweep.  (Chunked snapshot is topology-dependent — see
    :meth:`LintContext.expects_full_sweep`.)
    """
    from repro.core.fields import FIELD_GID, FIELD_RECCAP, FIELD_REPEAT, FIELD_TTL
    from repro.core.services.blackhole import REPEAT_PROBE, REPEAT_VERIFY

    name = getattr(service, "name", "")
    if name == "anycast":
        gids = sorted(getattr(service, "groups", {}))
        unserved = (max(gids) + 1) if gids else 1
        return [{FIELD_GID: g} for g in gids] + [{FIELD_GID: unserved}], False
    if name == "priocast":
        gids = sorted(getattr(service, "priorities", {}))
        unserved = (max(gids) + 1) if gids else 1
        return [{FIELD_GID: g} for g in gids] + [{FIELD_GID: unserved}], True
    if name == "blackhole":
        return [{FIELD_REPEAT: REPEAT_PROBE}, {FIELD_REPEAT: REPEAT_VERIFY}], True
    if name == "blackhole_ttl":
        return [{FIELD_TTL: None}], True
    if name == "snapshot_chunked":
        return [{FIELD_RECCAP: getattr(service, "max_records", 16)}], True
    if name == "critical":
        return [{}], False
    if name in ("plain", "snapshot"):
        return [{}], True
    # Unknown service: walk a bare trigger but make no sweep claim.
    return [{}], False


# --------------------------------------------------------------------- #
# Context: shared, lazily-computed analyses                             #
# --------------------------------------------------------------------- #


class LintContext:
    """Everything rules may inspect, with the expensive symbolic analyses
    computed once and shared across rules."""

    def __init__(
        self,
        switches: Mapping[int, Switch],
        topology: Topology,
        service=None,
        config: LintConfig | None = None,
    ) -> None:
        self.switches = dict(switches)
        self.topology = topology
        self.service = service
        self.config = config or LintConfig()
        self.widths = FieldWidths.for_switches(self.switches.values())
        self._local_analyzers: dict[int, SwitchAnalyzer] = {}
        self._walk_analyzers: dict[int, SwitchAnalyzer] | None = None
        self._analyses: dict[int, object] = {}
        self._shadows: dict[int, list] = {}
        self._walks: dict[int, list[WalkResult]] | None = None

    def nodes(self) -> list[int]:
        return sorted(self.switches)

    def analyzer(self, node: int) -> SwitchAnalyzer:
        """All-buckets analyzer (over-approximates every failure pattern)."""
        if node not in self._local_analyzers:
            self._local_analyzers[node] = SwitchAnalyzer(
                self.switches[node],
                self.widths,
                ff_first_only=False,
                project_unmatched=True,
            )
        return self._local_analyzers[node]

    def analysis(self, node: int):
        """'Any arrival' propagation result for *node* (free seeds)."""
        if node not in self._analyses:
            self._analyses[node] = self.analyzer(node).analyze()
        return self._analyses[node]

    def shadows(self, node: int) -> list:
        if node not in self._shadows:
            self._shadows[node] = self.analyzer(node).shadowed_entries()
        return self._shadows[node]

    def walk_roots(self) -> list[int]:
        if self.config.roots is not None:
            return [r for r in self.config.roots if r in self.switches]
        return self.nodes()

    def walks(self) -> dict[int, list[WalkResult]]:
        """root -> walk results, one per trigger class of the service."""
        if self._walks is None:
            if self._walk_analyzers is None:
                self._walk_analyzers = {
                    node: SwitchAnalyzer(sw, self.widths, ff_first_only=True)
                    for node, sw in self.switches.items()
                }
            classes, _full = trigger_classes(self.service)
            self._walks = {}
            for root in self.walk_roots():
                self._walks[root] = [
                    walk_network(
                        self.switches,
                        self.topology,
                        root,
                        trigger_fields=dict(fields),
                        widths=self.widths,
                        max_states=self.config.max_states,
                        analyzers=self._walk_analyzers,
                    )
                    for fields in classes
                ]
        return self._walks

    @property
    def expects_full_sweep(self) -> bool:
        if getattr(self.service, "name", "") == "snapshot_chunked":
            # The traversal pauses in-network when the record budget empties
            # and the controller re-injects a continuation; a single walk
            # only proves full coverage when one chunk spans the whole
            # traversal.  Every DFS message pushes at most two records and a
            # failure-free DFS sends 2·|E| messages, so 4·|E| + 2 records
            # always suffice.
            budget = getattr(self.service, "max_records", 0)
            return budget > 4 * self.topology.num_edges + 2
        return trigger_classes(self.service)[1]

    def entry_label(self, node: int, table_id: int, index: int) -> str:
        _idx, entry = self.analyzer(node).entries[table_id][index]
        return entry.cookie or f"entry[{index}]"


# --------------------------------------------------------------------- #
# Built-in rules                                                        #
# --------------------------------------------------------------------- #


@lint_rule(
    "SS001",
    "dead-rule",
    SEVERITY_WARNING,
    fix_hint="drop the entry from the emitter, or relax the guards that "
    "make its match unreachable",
)
def check_dead_rules(ctx: LintContext, rule: LintRule):
    """Entry unreachable under *any* arriving packet (any port, any header,
    any failure pattern).  A dead rule wastes TCAM space — the paper's
    O(Δ²) table-size budget — and usually marks an emitter bug."""
    for node in ctx.nodes():
        analysis = ctx.analysis(node)
        for table_id, indexed in ctx.analyzer(node).entries.items():
            for index, entry in indexed:
                if (table_id, index) not in analysis.hits:
                    yield rule.finding(
                        "no packet class can reach this entry",
                        node=node,
                        table=table_id,
                        cookie=entry.cookie or f"entry[{index}]",
                    )


@lint_rule(
    "SS002",
    "shadow-rule",
    SEVERITY_ERROR,
    fix_hint="raise the entry's priority or make the covering matches "
    "disjoint from it",
)
def check_shadowed_rules(ctx: LintContext, rule: LintRule):
    """Entry fully covered by strictly-higher-priority entries in its table:
    it can never fire, and unlike a dead rule its body silently disagrees
    with what the table actually does."""
    for node in ctx.nodes():
        for table_id, index, entry, covering in ctx.shadows(node):
            names = ", ".join(sorted({c or "<anonymous>" for c in covering}))
            yield rule.finding(
                f"match fully covered by higher-priority entries ({names})",
                node=node,
                table=table_id,
                cookie=entry.cookie or f"entry[{index}]",
            )


@lint_rule(
    "SS003",
    "table-miss",
    SEVERITY_ERROR,
    fix_hint="add a catch-all (table-miss) entry or widen the rules so the "
    "service's packet class is fully covered",
)
def check_table_miss(ctx: LintContext, rule: LintRule):
    """A reachable service packet class falls off a table (table miss =
    drop in this pipeline): the in-network traversal silently dies, which
    breaks the paper's termination guarantee."""
    if ctx.service is None:
        return
    seen: set[tuple[int, int, tuple]] = set()
    for root, walks in ctx.walks().items():
        for walk in walks:
            for node, table_id, cube in walk.misses:
                token = (node, table_id, cube.key())
                if token in seen:
                    continue
                seen.add(token)
                yield rule.finding(
                    f"trigger from root {root} reaches a table miss "
                    f"(witness {cube.describe()})",
                    node=node,
                    table=table_id,
                )


@lint_rule(
    "SS004",
    "set-unmatched-field",
    SEVERITY_WARNING,
    fix_hint="remove the write, or list the field in "
    "repro.analysis.lint.REPORT_ONLY_FIELDS if the controller consumes it",
)
def check_set_unmatched_field(ctx: LintContext, rule: LintRule):
    """A SetField writes a header field no rule *anywhere in the network*
    ever matches: either the write is vestigial or a matching rule is
    missing.  The matched set is network-wide because SmartSouth protocols
    are distributed — e.g. only the root's verdict rules read the
    ``toparent`` flag every other node writes.  Fields used as
    controller-report payload are expected to be write-only and are
    allowlisted."""
    matched: set[str] = set()
    for switch in ctx.switches.values():
        for _table_id, entry in switch.iter_entries():
            matched.update(entry.match.field_names())
    for node in ctx.nodes():
        switch = ctx.switches[node]
        written: dict[str, str] = {}

        def scan(actions, cookie):
            for action in actions:
                if isinstance(action, SetField):
                    written.setdefault(action.name, cookie)
                elif isinstance(action, GroupAction):
                    if action.group_id in switch.groups:
                        group = switch.groups.get(action.group_id)
                        for bucket in group.buckets:
                            scan(bucket.actions, cookie)

        for _table_id, entry in switch.iter_entries():
            scan(entry.instructions.apply_actions, entry.cookie)
        for name in sorted(written):
            if name in matched or name in REPORT_ONLY_FIELDS:
                continue
            if name.startswith(REPORT_ONLY_PREFIXES):
                continue
            yield rule.finding(
                f"field {name!r} is written but never matched on this switch",
                node=node,
                cookie=written[name],
            )


@lint_rule(
    "SS005",
    "sweep-coverage",
    SEVERITY_ERROR,
    fix_hint="check the sweep rows for the missing port's s-value and the "
    "classify advance rules feeding them",
)
def check_sweep_coverage(ctx: LintContext, rule: LintRule):
    """The paper's DFS-covers-all-edges property: with all links up, a
    trigger from any root must sweep (emit on) every physical port of every
    node.  Proven symbolically — no simulator run involved."""
    if ctx.service is None or not ctx.expects_full_sweep:
        return
    for root, walks in ctx.walks().items():
        swept: set[tuple[int, int]] = set()
        exhausted = False
        for walk in walks:
            swept |= walk.swept
            exhausted |= walk.exhausted
        expected = {
            (node, port)
            for node in ctx.topology.nodes()
            for port in range(1, ctx.topology.degree(node) + 1)
        }
        missing = sorted(expected - swept)
        if not missing:
            continue
        ports = ", ".join(f"{node}:{port}" for node, port in missing[:8])
        if len(missing) > 8:
            ports += f", ... ({len(missing)} total)"
        if exhausted:
            yield replace(
                rule.finding(
                    f"walk from root {root} hit the state budget before "
                    f"sweeping ports {ports}",
                    node=root,
                ),
                severity=SEVERITY_WARNING,
            )
        else:
            yield rule.finding(
                f"trigger from root {root} never sweeps ports {ports}",
                node=root,
            )


@lint_rule(
    "SS006",
    "dangling-goto",
    SEVERITY_ERROR,
    fix_hint="point the goto at an existing later table (OpenFlow gotos "
    "must move strictly forward)",
)
def check_dangling_goto(ctx: LintContext, rule: LintRule):
    """A goto instruction targets a missing table or does not move strictly
    forward — the pipeline would drop or loop at runtime."""
    for node in ctx.nodes():
        switch = ctx.switches[node]
        for table_id, entry in switch.iter_entries():
            goto = entry.instructions.goto_table
            if goto is None:
                continue
            if goto not in switch.tables:
                yield rule.finding(
                    f"goto targets missing table {goto}",
                    node=node,
                    table=table_id,
                    cookie=entry.cookie or None,
                )
            elif goto <= table_id:
                yield rule.finding(
                    f"goto targets table {goto}, not strictly after "
                    f"table {table_id}",
                    node=node,
                    table=table_id,
                    cookie=entry.cookie or None,
                )


@lint_rule(
    "SS007",
    "missing-group",
    SEVERITY_ERROR,
    fix_hint="install the group before referencing it, or drop the stale "
    "GroupAction",
)
def check_missing_group(ctx: LintContext, rule: LintRule):
    """A GroupAction references a group id the switch does not have (also
    checks actions nested in other groups' buckets)."""
    for node in ctx.nodes():
        switch = ctx.switches[node]

        def scan(actions, table_id, cookie):
            for action in actions:
                if isinstance(action, GroupAction):
                    if action.group_id not in switch.groups:
                        yield rule.finding(
                            f"group {action.group_id} is not installed",
                            node=node,
                            table=table_id,
                            cookie=cookie or None,
                        )
                    else:
                        group = switch.groups.get(action.group_id)
                        for bucket in group.buckets:
                            yield from scan(bucket.actions, table_id, cookie)

        for table_id, entry in switch.iter_entries():
            yield from scan(
                entry.instructions.apply_actions, table_id, entry.cookie
            )


@lint_rule(
    "SS008",
    "ambiguous-overlap",
    SEVERITY_ERROR,
    fix_hint="separate the priorities or make the matches disjoint; "
    "OpenFlow leaves overlapping same-priority behaviour undefined",
)
def check_ambiguous_overlap(ctx: LintContext, rule: LintRule):
    """Two same-priority entries in one table overlap but do different
    things: which one fires is undefined in OpenFlow (the simulator's
    insertion-order tiebreak would hide the bug)."""
    for node in ctx.nodes():
        for table_id, priority, a, b in ctx.analyzer(node).ambiguous_overlaps():
            yield rule.finding(
                f"overlaps {b.cookie or '<anonymous>'!r} at the same "
                f"priority {priority} with different actions",
                node=node,
                table=table_id,
                cookie=a.cookie or "<anonymous>",
            )


# --------------------------------------------------------------------- #
# Runner + report                                                       #
# --------------------------------------------------------------------- #


@dataclass
class LintReport:
    """All findings of one run plus enough context to render them."""

    findings: list[LintFinding]
    nodes: int
    rules_run: list[str]
    service: str | None = None
    notes: list[str] = dataclass_field(default_factory=list)

    def by_severity(self, severity: str) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> list[LintFinding]:
        return self.by_severity(SEVERITY_ERROR)

    @property
    def warnings(self) -> list[LintFinding]:
        return self.by_severity(SEVERITY_WARNING)

    @property
    def exit_code(self) -> int:
        """0 clean, 1 errors, 2 warnings only (mirrors ``verify --json``)."""
        if self.errors:
            return 1
        if self.warnings:
            return 2
        return 0

    def summary(self) -> str:
        return (
            f"lint: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) across {self.nodes} node(s)"
        )

    def to_json(self) -> dict:
        return {
            "service": self.service,
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "info": len(self.by_severity(SEVERITY_INFO)),
                "nodes": self.nodes,
                "rules_run": self.rules_run,
            },
            "notes": self.notes,
            "findings": [f.to_dict() for f in self.findings],
        }

    def format_text(self) -> str:
        lines = []
        for severity in _SEVERITIES:
            lines.extend(f.format() for f in self.by_severity(severity))
        lines.extend(f"note: {note}" for note in self.notes)
        lines.append(self.summary())
        return "\n".join(lines)


def run_lint(
    switches: Mapping[int, Switch],
    topology: Topology,
    service=None,
    config: LintConfig | None = None,
    rules: Iterable[str] | None = None,
) -> LintReport:
    """Run the registered lint rules over a compiled switch set.

    *service* enables the walk-based rules (SS003, SS005); without it they
    are skipped and a note records that.  *rules* restricts the run to the
    given ids; *config* disables rules and overrides severities.
    """
    config = config or LintConfig()
    ctx = LintContext(switches, topology, service=service, config=config)
    selected = [
        LINT_RULES[rule_id]
        for rule_id in (rules if rules is not None else LINT_RULES)
        if rule_id in LINT_RULES and rule_id not in config.disable
    ]
    findings: list[LintFinding] = []
    notes: list[str] = []
    walk_rules = {"SS003", "SS005"}
    for rule in selected:
        if service is None and rule.rule_id in walk_rules:
            notes.append(
                f"{rule.rule_id} ({rule.name}) skipped: no service given, "
                "network walks unavailable"
            )
            continue
        for finding in rule.func(ctx, rule):
            override = config.severity_overrides.get(finding.rule)
            if override is not None and override in _SEVERITIES:
                finding = replace(finding, severity=override)
            findings.append(finding)
    order = {SEVERITY_ERROR: 0, SEVERITY_WARNING: 1, SEVERITY_INFO: 2}
    findings.sort(
        key=lambda f: (order[f.severity], f.rule, f.node or -1, f.table or -1)
    )
    return LintReport(
        findings=findings,
        nodes=len(ctx.switches),
        rules_run=[rule.rule_id for rule in selected],
        service=getattr(service, "name", None) if service else None,
        notes=notes,
    )


def lint_engine(
    engine: "CompiledEngine", config: LintConfig | None = None
) -> LintReport:
    """Convenience: lint a CompiledEngine's switches (installs it first)."""
    engine.install()
    return run_lint(
        engine.switches,
        engine.network.topology,
        service=engine.service,
        config=config,
    )
