"""Static verification of compiled SmartSouth rule sets.

The paper argues that keeping the mechanism inside plain match-action tables
preserves a "key benefit of SDN": the forwarding state stays *formally
verifiable*.  This module makes that concrete for the compiled pipelines:

* **structural checks** — every ``goto_table`` moves strictly forward to a
  table that exists; every referenced group exists; FF groups end in an
  unconditionally-live bucket or are root groups that may legally drop;
  output ports are within the switch's port range;
* **overlap check** — no two entries of the same table and priority can
  match the same packet while prescribing different behaviour (OpenFlow
  leaves that order-dependent and hence unverifiable);
* **coverage check** — the classify table has a catch-all (the bounce rule)
  or full per-port coverage, so no service packet can hit a table miss.

These are decidable, syntax-level properties — exactly what makes the
SmartSouth approach verifiable where an active controller program is not.
The overlap and coverage checks delegate to the header-space engine in
:mod:`repro.analysis.symbolic` (one source of truth shared with the lint
rules in :mod:`repro.analysis.lint`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.symbolic import SwitchAnalyzer
from repro.openflow.actions import GroupAction, Output
from repro.openflow.group import GroupType
from repro.openflow.match import FieldTest, Match, pairs_intersect
from repro.openflow.packet import is_physical_port
from repro.openflow.switch import Switch


@dataclass
class VerificationReport:
    """Findings of one switch verification."""

    node: int
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def error(self, message: str) -> None:
        self.errors.append(f"switch {self.node}: {message}")

    def warn(self, message: str) -> None:
        self.warnings.append(f"switch {self.node}: {message}")


def _tests_compatible(a: FieldTest, b: FieldTest) -> bool:
    """Can some field value satisfy both tests?

    A test with ``mask == 0`` is a wildcard (OXM permits such TLVs): it
    constrains nothing and is compatible with everything — made explicit
    here so the cube algebra's invariants cannot be violated by a
    degenerate TLV.  The actual intersection lives in
    :func:`repro.openflow.match.pairs_intersect`.
    """
    if a.is_wildcard or b.is_wildcard:
        return True
    return pairs_intersect(a.value, a.mask, b.value, b.mask) is not None


def matches_overlap(a: Match, b: Match) -> bool:
    """Can some packet context satisfy both matches?

    Per-field intersection: two conjunctions of single-field cubes overlap
    exactly when every commonly-constrained field has a common value.
    """
    for name, test_a in a.tests.items():
        test_b = b.tests.get(name)
        if test_b is not None and not _tests_compatible(test_a, test_b):
            return False
    return True


def verify_switch(switch: Switch) -> VerificationReport:
    """Run all static checks on one compiled switch."""
    report = VerificationReport(node=switch.node_id)
    table_ids = set(switch.tables)

    for table_id, entry in switch.iter_entries():
        goto = entry.instructions.goto_table
        if goto is not None:
            if goto <= table_id:
                report.error(
                    f"table {table_id} entry {entry.cookie!r} goes backwards "
                    f"to table {goto}"
                )
            elif goto not in table_ids:
                report.error(
                    f"table {table_id} entry {entry.cookie!r} goes to "
                    f"missing table {goto}"
                )
        for action in entry.instructions.apply_actions:
            if isinstance(action, GroupAction):
                if action.group_id not in switch.groups:
                    report.error(
                        f"table {table_id} entry {entry.cookie!r} references "
                        f"missing group {action.group_id}"
                    )
            if isinstance(action, Output) and is_physical_port(action.port):
                if action.port > switch.num_ports:
                    report.error(
                        f"table {table_id} entry {entry.cookie!r} outputs to "
                        f"nonexistent port {action.port}"
                    )

    analyzer = SwitchAnalyzer(switch, project_unmatched=True)
    _check_groups(switch, report)
    _check_overlaps(analyzer, report)
    _check_classify_coverage(switch, analyzer, report)
    _check_reachability(switch, report)
    return report


def _check_reachability(switch: Switch, report: VerificationReport) -> None:
    """Orphan detection: every table must be reachable from table 0 via
    goto edges, and every group referenced by some reachable rule or by a
    chained bucket.  Orphans are dead configuration — a red flag for a
    compiler bug (warned, not failed: they cannot change behaviour)."""
    # Table reachability.
    reachable = {0} if 0 in switch.tables else set()
    frontier = list(reachable)
    while frontier:
        table_id = frontier.pop()
        for entry in switch.tables[table_id].entries():
            goto = entry.instructions.goto_table
            if goto is not None and goto in switch.tables and goto not in reachable:
                reachable.add(goto)
                frontier.append(goto)
    orphan_tables = set(switch.tables) - reachable
    if orphan_tables:
        report.warn(f"unreachable tables: {sorted(orphan_tables)}")

    # Group referencing (from rules and transitively through buckets).
    referenced: set[int] = set()
    frontier2: list[int] = []
    for _table_id, entry in switch.iter_entries():
        for action in entry.instructions.apply_actions:
            if isinstance(action, GroupAction):
                if action.group_id not in referenced:
                    referenced.add(action.group_id)
                    frontier2.append(action.group_id)
    while frontier2:
        group_id = frontier2.pop()
        if group_id not in switch.groups:
            continue
        for bucket in switch.groups.get(group_id).buckets:
            for action in bucket.actions:
                if isinstance(action, GroupAction):
                    if action.group_id not in referenced:
                        referenced.add(action.group_id)
                        frontier2.append(action.group_id)
    orphan_groups = {
        g.group_id for g in switch.groups.groups()
    } - referenced
    if orphan_groups:
        report.warn(
            f"groups never referenced by any rule: {sorted(orphan_groups)}"
        )


def _check_groups(switch: Switch, report: VerificationReport) -> None:
    for group in switch.groups.groups():
        for bucket in group.buckets:
            for action in bucket.actions:
                if isinstance(action, Output) and is_physical_port(action.port):
                    if action.port > switch.num_ports:
                        report.error(
                            f"group {group.group_id} outputs to nonexistent "
                            f"port {action.port}"
                        )
                if isinstance(action, GroupAction):
                    if action.group_id not in switch.groups:
                        report.error(
                            f"group {group.group_id} chains to missing group "
                            f"{action.group_id}"
                        )
                    elif action.group_id == group.group_id:
                        report.error(f"group {group.group_id} chains to itself")
        if group.group_type is GroupType.FF:
            if not group.buckets:
                report.error(f"FF group {group.group_id} has no buckets")
            elif group.buckets[-1].watch_port is not None:
                report.warn(
                    f"FF group {group.group_id} can drop packets when all "
                    f"watched ports are down (no unconditional bucket)"
                )
        if group.group_type is GroupType.SELECT and len(group.buckets) < 2:
            report.warn(
                f"SELECT group {group.group_id} has fewer than 2 buckets: "
                f"not a useful smart counter"
            )


def _check_overlaps(analyzer: SwitchAnalyzer, report: VerificationReport) -> None:
    """Ambiguous same-priority overlaps, via the symbolic engine's precise
    cube intersection (a packet witnessing both matches must exist)."""
    for table_id, priority, a, b in analyzer.ambiguous_overlaps():
        report.error(
            f"table {table_id}: overlapping same-priority "
            f"({priority}) entries with different behaviour: "
            f"{a.cookie!r} vs {b.cookie!r}"
        )


def _check_classify_coverage(
    switch: Switch, analyzer: SwitchAnalyzer, report: VerificationReport
) -> None:
    """Every physical arrival must match something in every classify table.

    Classify tables are identified by their rule cookies (``classify:*``),
    which also makes the check work for multi-service pipelines with one
    relocated classify table per service block.  The check propagates 'any
    packet, any physical port' seeds through the pipeline symbolically: a
    classify table that can be reached by a class matching none of its
    entries (a table miss = silent drop of an in-flight traversal) fails.
    """
    classify_tables = {
        table_id
        for table_id, entry in switch.iter_entries()
        if entry.cookie.startswith("classify:")
    }
    if not classify_tables:
        report.error("no classify table installed")
        return
    result = analyzer.analyze(analyzer.free_seeds(include_local=False))
    for table_id in sorted(classify_tables):
        missed = result.misses.get(table_id)
        if missed:
            report.error(
                f"classify table {table_id} misses bounce coverage for "
                f"arrivals like {missed[0].describe()}"
            )


def verify_engine(engine) -> list[VerificationReport]:
    """Verify every switch of a :class:`~repro.core.engine.CompiledEngine`."""
    engine.install()
    return [verify_switch(switch) for switch in engine.switches.values()]
