"""Static verification of compiled SmartSouth rule sets.

The paper argues that keeping the mechanism inside plain match-action tables
preserves a "key benefit of SDN": the forwarding state stays *formally
verifiable*.  This module makes that concrete for the compiled pipelines:

* **structural checks** — every ``goto_table`` moves strictly forward to a
  table that exists; every referenced group exists; FF groups end in an
  unconditionally-live bucket or are root groups that may legally drop;
  output ports are within the switch's port range;
* **overlap check** — no two entries of the same table and priority can
  match the same packet while prescribing different behaviour (OpenFlow
  leaves that order-dependent and hence unverifiable);
* **coverage check** — the classify table has a catch-all (the bounce rule)
  or full per-port coverage, so no service packet can hit a table miss.

These are decidable, syntax-level properties — exactly what makes the
SmartSouth approach verifiable where an active controller program is not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.openflow.actions import GroupAction, Output
from repro.openflow.flowtable import FlowEntry
from repro.openflow.group import GroupType
from repro.openflow.match import FieldTest, Match
from repro.openflow.packet import is_physical_port
from repro.openflow.switch import Switch


@dataclass
class VerificationReport:
    """Findings of one switch verification."""

    node: int
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def error(self, message: str) -> None:
        self.errors.append(f"switch {self.node}: {message}")

    def warn(self, message: str) -> None:
        self.warnings.append(f"switch {self.node}: {message}")


def _tests_compatible(a: FieldTest, b: FieldTest) -> bool:
    """Can some field value satisfy both tests?"""
    if a.mask is None and b.mask is None:
        return a.value == b.value
    if a.mask is None:
        return (a.value & b.mask) == b.value
    if b.mask is None:
        return (b.value & a.mask) == a.value
    common = a.mask & b.mask
    return (a.value & common) == (b.value & common)


def matches_overlap(a: Match, b: Match) -> bool:
    """Can some packet context satisfy both matches?"""
    for name, test_a in a.tests.items():
        test_b = b.tests.get(name)
        if test_b is not None and not _tests_compatible(test_a, test_b):
            return False
    return True


def _same_behaviour(a: FlowEntry, b: FlowEntry) -> bool:
    return (
        a.instructions.apply_actions == b.instructions.apply_actions
        and a.instructions.goto_table == b.instructions.goto_table
        and a.instructions.write_metadata == b.instructions.write_metadata
    )


def verify_switch(switch: Switch) -> VerificationReport:
    """Run all static checks on one compiled switch."""
    report = VerificationReport(node=switch.node_id)
    table_ids = set(switch.tables)

    for table_id, entry in switch.iter_entries():
        goto = entry.instructions.goto_table
        if goto is not None:
            if goto <= table_id:
                report.error(
                    f"table {table_id} entry {entry.cookie!r} goes backwards "
                    f"to table {goto}"
                )
            elif goto not in table_ids:
                report.error(
                    f"table {table_id} entry {entry.cookie!r} goes to "
                    f"missing table {goto}"
                )
        for action in entry.instructions.apply_actions:
            if isinstance(action, GroupAction):
                if action.group_id not in switch.groups:
                    report.error(
                        f"table {table_id} entry {entry.cookie!r} references "
                        f"missing group {action.group_id}"
                    )
            if isinstance(action, Output) and is_physical_port(action.port):
                if action.port > switch.num_ports:
                    report.error(
                        f"table {table_id} entry {entry.cookie!r} outputs to "
                        f"nonexistent port {action.port}"
                    )

    _check_groups(switch, report)
    _check_overlaps(switch, report)
    _check_classify_coverage(switch, report)
    _check_reachability(switch, report)
    return report


def _check_reachability(switch: Switch, report: VerificationReport) -> None:
    """Orphan detection: every table must be reachable from table 0 via
    goto edges, and every group referenced by some reachable rule or by a
    chained bucket.  Orphans are dead configuration — a red flag for a
    compiler bug (warned, not failed: they cannot change behaviour)."""
    # Table reachability.
    reachable = {0} if 0 in switch.tables else set()
    frontier = list(reachable)
    while frontier:
        table_id = frontier.pop()
        for entry in switch.tables[table_id].entries():
            goto = entry.instructions.goto_table
            if goto is not None and goto in switch.tables and goto not in reachable:
                reachable.add(goto)
                frontier.append(goto)
    orphan_tables = set(switch.tables) - reachable
    if orphan_tables:
        report.warn(f"unreachable tables: {sorted(orphan_tables)}")

    # Group referencing (from rules and transitively through buckets).
    referenced: set[int] = set()
    frontier2: list[int] = []
    for _table_id, entry in switch.iter_entries():
        for action in entry.instructions.apply_actions:
            if isinstance(action, GroupAction):
                if action.group_id not in referenced:
                    referenced.add(action.group_id)
                    frontier2.append(action.group_id)
    while frontier2:
        group_id = frontier2.pop()
        if group_id not in switch.groups:
            continue
        for bucket in switch.groups.get(group_id).buckets:
            for action in bucket.actions:
                if isinstance(action, GroupAction):
                    if action.group_id not in referenced:
                        referenced.add(action.group_id)
                        frontier2.append(action.group_id)
    orphan_groups = {
        g.group_id for g in switch.groups.groups()
    } - referenced
    if orphan_groups:
        report.warn(
            f"groups never referenced by any rule: {sorted(orphan_groups)}"
        )


def _check_groups(switch: Switch, report: VerificationReport) -> None:
    for group in switch.groups.groups():
        for bucket in group.buckets:
            for action in bucket.actions:
                if isinstance(action, Output) and is_physical_port(action.port):
                    if action.port > switch.num_ports:
                        report.error(
                            f"group {group.group_id} outputs to nonexistent "
                            f"port {action.port}"
                        )
                if isinstance(action, GroupAction):
                    if action.group_id not in switch.groups:
                        report.error(
                            f"group {group.group_id} chains to missing group "
                            f"{action.group_id}"
                        )
                    elif action.group_id == group.group_id:
                        report.error(f"group {group.group_id} chains to itself")
        if group.group_type is GroupType.FF:
            if not group.buckets:
                report.error(f"FF group {group.group_id} has no buckets")
            elif group.buckets[-1].watch_port is not None:
                report.warn(
                    f"FF group {group.group_id} can drop packets when all "
                    f"watched ports are down (no unconditional bucket)"
                )
        if group.group_type is GroupType.SELECT and len(group.buckets) < 2:
            report.warn(
                f"SELECT group {group.group_id} has fewer than 2 buckets: "
                f"not a useful smart counter"
            )


def _check_overlaps(switch: Switch, report: VerificationReport) -> None:
    for table_id in sorted(switch.tables):
        entries = list(switch.tables[table_id].entries())
        by_priority: dict[int, list[FlowEntry]] = {}
        for entry in entries:
            by_priority.setdefault(entry.priority, []).append(entry)
        for priority, bucket in by_priority.items():
            for i, a in enumerate(bucket):
                for b in bucket[i + 1:]:
                    if matches_overlap(a.match, b.match) and not _same_behaviour(a, b):
                        report.error(
                            f"table {table_id}: overlapping same-priority "
                            f"({priority}) entries with different behaviour: "
                            f"{a.cookie!r} vs {b.cookie!r}"
                        )


def _check_classify_coverage(switch: Switch, report: VerificationReport) -> None:
    """Every arrival must match something in every classify table.

    Classify tables are identified by their rule cookies (``classify:*``),
    which also makes the check work for multi-service pipelines with one
    relocated classify table per service block.
    """
    classify_tables = sorted(
        {
            table_id
            for table_id, entry in switch.iter_entries()
            if entry.cookie.startswith("classify:")
        }
    )
    if not classify_tables:
        report.error("no classify table installed")
        return
    for table_id in classify_tables:
        entries = list(switch.tables[table_id].entries())
        if any(len(e.match) == 0 for e in entries):
            continue  # catch-all present
        # Without a catch-all, demand per-in-port coverage at bounce priority.
        covered = set()
        for entry in entries:
            test = entry.match.tests.get("in_port")
            if test is None or test.mask is not None:
                continue
            if entry.match.field_names() <= {"in_port", "repeat"}:
                covered.add(test.value)
        missing = set(range(1, switch.num_ports + 1)) - covered
        if missing:
            report.error(
                f"classify table {table_id} has no catch-all and misses "
                f"bounce coverage for ports {sorted(missing)}"
            )


def verify_engine(engine) -> list[VerificationReport]:
    """Verify every switch of a :class:`~repro.core.engine.CompiledEngine`."""
    engine.install()
    return [verify_switch(switch) for switch in engine.switches.values()]
