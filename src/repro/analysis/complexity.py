"""Closed-form message complexities: the paper's Table 2.

The paper reports, per service, the number and size of out-of-band
(controller) and in-band (data-plane) messages.  The formulas below are the
exact counts our implementation achieves; the paper's table drops additive
constants (it writes ``4|E| - 2n`` where the exact DFS count on a connected
graph is ``4E - 2n + 2``).  ``benchmarks/bench_table2_complexity.py``
measures the implementation against these formulas and prints the
paper-vs-measured table that lands in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def dfs_message_count(num_nodes: int, num_edges: int) -> int:
    """Exact in-band message count of one full SmartSouth DFS.

    Each of the n-1 tree edges is crossed twice (down, up); each of the
    E-n+1 non-tree edges is probed and bounced from both sides (4 crossings):
    ``2(n-1) + 4(E-n+1) = 4E - 2n + 2``.
    """
    return 4 * num_edges - 2 * num_nodes + 2


def echo_message_count(num_nodes: int, num_edges: int) -> int:
    """In-band count of the blackhole probe phase (echo on new links).

    The echo adds two extra crossings per tree edge, giving every edge
    exactly four: ``4E``.
    """
    return 4 * num_edges


def priocast_message_count(num_nodes: int, num_edges: int) -> int:
    """Two full traversals: ``8E - 4n + 4`` (the paper writes 8|E| - 4n)."""
    return 2 * dfs_message_count(num_nodes, num_edges)


def traversal_hop_bound(
    service_name: str, num_nodes: int, num_edges: int
) -> int:
    """Worst-case in-band crossings of one traversal of *service_name*.

    The per-service closed forms above plus a small additive slack for the
    extra parent-return crossings failure rerouting can add.  This is the
    single source of truth for both the model checker's per-packet hop
    budget (MC001) and the supervisor's watchdog deadline.
    """
    dfs = dfs_message_count(num_nodes, num_edges)
    if service_name == "priocast":
        return 2 * dfs + 6
    if service_name == "blackhole":
        return 4 * num_edges + 6
    if service_name == "blackhole_ttl":
        return 4 * num_edges + 10
    return dfs + 6


def ttl_search_probes(num_edges: int) -> int:
    """Probe count of the TTL binary search: 1 sanity probe + 1 floor probe
    + ⌈log₂(4E + 4)⌉ bisection steps (upper bound)."""
    return 2 + math.ceil(math.log2(4 * num_edges + 4))


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2: formulas (as the paper writes them) and exact
    bounds (as this implementation achieves them)."""

    service: str
    out_band_msgs: str
    out_band_size: str
    in_band_msgs: str
    in_band_size: str
    #: exact worst-case bound evaluator: (n, E) -> (out_band, in_band)
    exact_out_band: object
    exact_in_band: object


def _rows() -> list[Table2Row]:
    return [
        Table2Row(
            "Snapshot",
            "1 + 1", "O(1) + O(|E|)",
            "4|E| - 2n", "O(|E|)",
            lambda n, e: 2,
            lambda n, e: dfs_message_count(n, e),
        ),
        Table2Row(
            "Anycast",
            "0", "-",
            "4|E| - 2n", "data",
            lambda n, e: 0,
            lambda n, e: dfs_message_count(n, e),
        ),
        Table2Row(
            "Priocast",
            "0", "-",
            "8|E| - 4n", "data",
            lambda n, e: 0,
            lambda n, e: priocast_message_count(n, e),
        ),
        Table2Row(
            "Blackhole 1 (TTL)",
            "2 log |E|", "O(1)",
            "8|E| - 4n", "O(1)",
            lambda n, e: 2 * ttl_search_probes(e),
            # Geometric bisection sum; a loose but honest closed form is
            # (probes) * full-DFS; the paper's 2x-DFS bound holds on average.
            lambda n, e: ttl_search_probes(e) * dfs_message_count(n, e),
        ),
        Table2Row(
            "Blackhole 2 (counters)",
            "3", "O(1)",
            "4|E|", "O(1)",
            lambda n, e: 3,
            lambda n, e: echo_message_count(n, e) + dfs_message_count(n, e),
        ),
        Table2Row(
            "Critical",
            "2", "O(1)",
            "4|E| - 2n", "O(1)",
            lambda n, e: 2,
            lambda n, e: dfs_message_count(n, e),
        ),
    ]


def table2() -> list[Table2Row]:
    """All rows of the paper's Table 2."""
    return _rows()


def table2_row(service: str) -> Table2Row:
    """Look up one row by (case-insensitive prefix of the) service name."""
    needle = service.lower()
    for row in _rows():
        if row.service.lower().startswith(needle):
            return row
    raise KeyError(f"no Table 2 row for service {service!r}")


def tag_bits_estimate(num_nodes: int, max_degree: int) -> int:
    """The paper's "another O(n log n) bits" DFS tag estimate: per node,
    par and cur each need ⌈log₂(Δ+1)⌉ bits."""
    per_node = 2 * max(1, max_degree.bit_length())
    return num_nodes * per_node
