"""Bounded explicit-state model checking of compiled SmartSouth deployments.

PR 1's symbolic engine (:mod:`repro.analysis.symbolic`) proves *per-packet*
properties of a rule set.  SmartSouth's headline claims, however, are
*temporal* properties of the distributed traversal — the DFS visits every
live edge, the trigger returns to the root within 2·|E| hops, smart counters
localize a blackhole — and they must hold under link failures interleaved
with packet motion, exactly where OpenFlow fast-failover semantics get
subtle.  This module explores that state space mechanically.

Global state
------------

A :class:`GlobalState` is the tuple the paper's §2 state-machine argument
quantifies over, made explicit:

* **in-flight packets** — SmartSouth keeps all per-node tag registers
  (``v{n}.par`` / ``v{n}.cur``) *in the packet*, so a packet's exact header
  cube + label stack + location is the whole traversal state;
* **the live-link set** — which edges are up (fast-failover consults it);
* **smart-counter cursors** — the only per-switch mutable state the
  compiled pipelines have (round-robin ``SELECT`` groups);
* **trigger/failure budgets** and the accumulated observables (controller
  reports, local deliveries, packet losses).

Transitions are *driven by the PR 1 symbolic engine*: a packet step runs the
packet's exact cube through the node's compiled tables with
:meth:`Cube.intersect_match` per entry in priority order — the checker
verifies the compiled rules, not a re-implementation of the algorithm.
Because every field any rule matches is pinned exact at injection
(:func:`zero_state_fields`) and stays exact under ``set_field`` /
``dec_ttl`` / concrete counter fetches, the first matching entry is *the*
matching entry and the step is deterministic given the nondeterministic
environment choices (which packet moves, which link fails, when a trigger
is injected).

Invariants
----------

Temporal properties are pluggable via the :func:`invariant` registry —
the exact analogue of ``@lint_rule``:

========  ========================  ========  =================================
id        name                      scope     catches
========  ========================  ========  =================================
MC001     no-forwarding-loop        step      hop budget exceeded; rule loops
MC002     snapshot-record-sanity    both      duplicate edge records, bad pops
MC003     counter-coherence         step      counter bucket j must write j
MC004     traversal-completes       terminal  trigger never produces its report
MC005     blackhole-localized       terminal  verdict names a healthy link
MC006     failover-masks-failures   step      FF emits on a dead watched port
MC007     delivery-correctness      terminal  anycast/priocast wrong receiver
MC008     pipeline-integrity        step      missing table/group, bad goto
MC009     epoch-at-most-once        terminal  an epoch yields >1 accepted result
MC010     crash-at-most-once        terminal  stale epoch crosses a crash/resync
MC011     switch-crash-under-claims terminal  a crashed switch fabricates results
========  ========================  ========  =================================

Controller crash scenarios (``CheckConfig.crash`` / ``--crash``) add a
nondeterministic ``("crash",)`` transition to origin-reporting services:
the restarted controller's epoch clock jumps past every in-flight epoch
and the retried trigger runs under the new epoch, while the origin gate
(:class:`repro.core.epoch.EpochGate`, modeled here as a squash of
stale-epoch packets entering the root) must keep pre-crash stragglers
from being accepted — verified by MC010.  Squashed packets surface as
``"squashed"`` environment losses, and the minimizer never deletes the
crash action (it only deletes failures and extra triggers).

Switch crash scenarios (``CheckConfig.switch_crash`` / ``--switch-crash``)
instead crash a *data-plane* node: ``("sw-crash", v)`` takes the victim
down (packets arriving there drop as ``"sw_down"`` losses) and
``("sw-reboot", v)`` brings it back *bare* — tables, groups and fast-path
state gone, so traffic miss-drops there as ``"sw_bare"`` losses until
re-adoption.  Both are environment losses; MC011 asserts the crash can
only ever under-claim (a lost traversal, a partial snapshot), never
fabricate a result.

On violation the checker emits a **counterexample**: the shortest (BFS)
action trace reaching the violation, greedily minimized by deleting failure
/ extra-trigger actions that are not needed to reproduce it.  Traces are
replayable: :mod:`repro.analysis.replay` converts one into a deterministic
:mod:`repro.net.simulator` run (failures scheduled by *packet step count*,
not wall time), giving a differential cross-check between this checker and
the simulator.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.analysis.symbolic import (
    METADATA_WIDTH,
    Cube,
    FieldWidths,
    zero_state_fields,
)
from repro.core.fields import (
    FIELD_EPOCH,
    FIELD_GID,
    FIELD_OPT_VAL,
    FIELD_RECCAP,
    FIELD_REPEAT,
    FIELD_SNAP_DONE,
    FIELD_SVC,
    FIELD_TTL,
)
from repro.core.services.blackhole import (
    BH_DONE,
    BH_FOUND,
    FIELD_BH,
    FIELD_REPORT_IN,
    FIELD_REPORT_PORT,
    REPEAT_PROBE,
    REPEAT_VERIFY,
)
from repro.core.smart_counter import counter_bucket_value
from repro.net.topology import Topology
from repro.openflow.actions import (
    DecTtl,
    GroupAction,
    Output,
    PopLabel,
    PushLabel,
    SetField,
)
from repro.openflow.group import Group, GroupType
from repro.openflow.match import full_mask
from repro.openflow.packet import (
    CONTROLLER_PORT,
    IN_PORT,
    LOCAL_PORT,
    is_physical_port,
    port_name,
)
from repro.openflow.switch import Switch

#: Default bound on explored states per scenario.
DEFAULT_STATE_BUDGET = 200_000
#: Default number of distinct violations collected before stopping.
DEFAULT_MAX_VIOLATIONS = 20

#: Loss kinds that the *environment* (not the program) caused; they excuse
#: the bounded-liveness invariant MC004.  "squashed" is the origin epoch
#: gate killing a stale-epoch packet after a controller crash/resync — the
#: at-most-once mechanism working as designed, not a lost traversal.
#: "sw_down" is a packet arriving at a crashed switch (dropped on the
#: floor); "sw_bare" is a packet arriving at a rebooted-but-not-yet-
#: readopted switch, whose empty table 0 miss-drops it.  Both are the
#: switch crash destroying traffic — under-claims, never wrong results.
ENVIRONMENT_LOSSES = frozenset(
    {"dead_port", "swallowed", "squashed", "sw_down", "sw_bare"}
)


# --------------------------------------------------------------------- #
# Scenarios                                                             #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class TriggerSpec:
    """One trigger injection: header overrides applied to the zero state."""

    root: int
    fields: tuple[tuple[str, int], ...] = ()
    #: Only injectable once no packet is in flight (phase ordering — e.g.
    #: the blackhole verify trigger must not overtake the probe phase).
    at_quiescence: bool = False
    #: Only injectable once the controller crash has happened (the
    #: restarted controller's retry under the resynced epoch).
    after_crash: bool = False
    #: Only injectable once the victim switch has crashed *and* rebooted
    #: (the supervisor's retry against a network holding one bare switch).
    after_reboot: bool = False
    label: str = "trigger"

    def field_dict(self) -> dict[str, int]:
        return dict(self.fields)


@dataclass(frozen=True)
class Scenario:
    """One exploration setup: triggers + environment configuration."""

    name: str
    service_name: str
    root: int
    triggers: tuple[TriggerSpec, ...]
    #: Edges that silently swallow crossing packets but look *up* to
    #: fast-failover (``link.set_blackhole()`` in the simulator).
    blackholes: frozenset[int] = frozenset()
    #: Whether in-run visible link failures are explored (disabled for
    #: blackhole scenarios: the paper's detection algorithms assume no
    #: concurrent failures, and blackhole placement is enumerated instead).
    allow_failures: bool = True
    #: The anycast/priocast group id this scenario requests (None others).
    gid: int | None = None
    #: ``(pre_epoch, post_epoch)`` for a controller-crash scenario: the
    #: origin gate starts at *pre_epoch*; the nondeterministic ``("crash",)``
    #: transition jumps it to *post_epoch* (the restarted controller's
    #: :meth:`EpochClock.resync <repro.core.epoch.EpochClock.resync>` jump).
    #: ``None`` disables the crash machinery entirely.
    crash: tuple[int, int] | None = None
    #: The victim node of a *switch*-crash scenario: the nondeterministic
    #: ``("sw-crash", node)`` transition takes it down (in-flight packets
    #: arriving there are dropped) and ``("sw-reboot", node)`` brings it
    #: back *bare* — flow tables, groups and fast-path state all gone,
    #: miss-dropping traffic until re-adoption.  ``None`` disables it.
    sw_crash: int | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "service": self.service_name,
            "root": self.root,
            "triggers": [
                {
                    "root": t.root,
                    "fields": dict(t.fields),
                    "at_quiescence": t.at_quiescence,
                    "after_crash": t.after_crash,
                    "after_reboot": t.after_reboot,
                    "label": t.label,
                }
                for t in self.triggers
            ],
            "blackholes": sorted(self.blackholes),
            "allow_failures": self.allow_failures,
            "gid": self.gid,
            "crash": list(self.crash) if self.crash else None,
            "sw_crash": self.sw_crash,
        }


def _blackhole_placements(
    topology: Topology, budget: int
) -> list[frozenset[int]]:
    """The clean placement plus every failure-budget-sized combination."""
    placements: list[frozenset[int]] = [frozenset()]
    edge_ids = list(range(topology.num_edges))
    for size in range(1, max(0, budget) + 1):
        placements.extend(
            frozenset(combo) for combo in itertools.combinations(edge_ids, size)
        )
    return placements


#: The crash scenario's epoch pair: the first supervised attempt runs under
#: epoch 1; the restarted controller resyncs past every in-flight epoch
#: (margin 2, mirroring ``EpochClock.resync``) and retries under epoch 3.
CRASH_EPOCHS = (1, 3)


def _crash_scenario(name: str, root: int) -> Scenario:
    """A controller crash/recovery scenario for an origin-reporting service.

    The pre-crash trigger is tagged with the first epoch and admitted by the
    origin gate; the ``("crash",)`` transition (available once the trigger is
    in flight) jumps the gate to the post-crash epoch; the retry trigger —
    injectable only after the crash — runs under that epoch.  The gate
    squashes the stale straggler at the origin, and MC010 asserts no
    pre-crash epoch is accepted after the crash.
    """
    pre, post = CRASH_EPOCHS
    return Scenario(
        f"{name}:crash",
        name,
        root,
        (
            TriggerSpec(root, ((FIELD_EPOCH, pre),), label="pre-crash"),
            TriggerSpec(
                root,
                ((FIELD_EPOCH, post),),
                after_crash=True,
                label="post-crash-retry",
            ),
        ),
        crash=(pre, post),
    )


#: The switch-crash scenario's epoch pair: the pre-crash attempt and the
#: supervisor's post-reboot retry carry distinct epoch tags so MC009 can
#: hold them to at-most-once individually (no origin gate is involved —
#: a switch crash does not resync the controller's clock).
SW_CRASH_EPOCHS = (1, 2)


def _switch_crash_scenarios(
    name: str, root: int, topology: Topology
) -> list[Scenario]:
    """Switch crash/reboot scenarios: one per non-root victim node.

    Each scenario puts a trigger in flight, lets the nondeterministic
    ``("sw-crash", victim)`` transition take the victim down anywhere in
    the interleaving (dropping traffic that arrives there), lets
    ``("sw-reboot", victim)`` bring it back *bare*, and then retries the
    traversal against the half-recovered network.  In-run link failures
    are disabled: the crash is the failure under study, and composing it
    with the link-failure budget explodes the state space without adding
    to the MC011 claim.
    """
    pre, post = SW_CRASH_EPOCHS
    return [
        Scenario(
            f"{name}:sw-crash:{victim}",
            name,
            root,
            (
                TriggerSpec(root, ((FIELD_EPOCH, pre),), label="pre-sw-crash"),
                TriggerSpec(
                    root,
                    ((FIELD_EPOCH, post),),
                    after_reboot=True,
                    label="post-reboot-retry",
                ),
            ),
            allow_failures=False,
            sw_crash=victim,
        )
        for victim in topology.nodes()
        if victim != root
    ]


def scenarios_for(
    service, topology: Topology, root: int, max_failures: int = 1,
    crash: bool = False, switch_crash: bool = False,
) -> list[Scenario]:
    """Build the scenario list the checker explores for *service*.

    For most services this is a single scenario whose in-run failure budget
    is *max_failures*.  Blackhole services instead enumerate blackhole
    placements up to *max_failures* simultaneous silent-drop links (plus the
    clean run) with visible failures disabled — the paper's algorithms
    assume a stable topology during one detection run.

    With *crash* set, origin-reporting services additionally get a
    controller-crash scenario: an epoch-tagged trigger in flight, a
    nondeterministic crash/resync that jumps the origin gate, and a
    retried trigger under the new epoch (checked by MC010).

    With *switch_crash* set, they additionally get one switch-crash
    scenario per non-root victim: the victim crashes mid-traversal, comes
    back bare, and the retry runs against the half-recovered network
    (checked by MC011).
    """
    name = service.name
    if name in ("plain", "snapshot", "critical"):
        out = [
            Scenario(name, name, root, (TriggerSpec(root, label=name),))
        ]
        if crash:
            out.append(_crash_scenario(name, root))
        if switch_crash:
            out.extend(_switch_crash_scenarios(name, root, topology))
        return out
    if name == "snapshot_chunked":
        cap = int(getattr(service, "max_records", 16))
        return [
            Scenario(
                name,
                name,
                root,
                (TriggerSpec(root, ((FIELD_RECCAP, cap),), label=name),),
            )
        ]
    if name == "anycast":
        groups = getattr(service, "groups", {}) or {}
        gids = sorted(groups)
        unserved = (max(gids) if gids else 0) + 1
        out = []
        for gid in gids + [unserved]:
            out.append(
                Scenario(
                    f"anycast:gid{gid}",
                    name,
                    root,
                    (TriggerSpec(root, ((FIELD_GID, gid),), label=f"gid{gid}"),),
                    gid=gid,
                )
            )
        return out
    if name == "priocast":
        priorities = getattr(service, "priorities", {}) or {}
        out = []
        for gid in sorted(priorities):
            out.append(
                Scenario(
                    f"priocast:gid{gid}",
                    name,
                    root,
                    (TriggerSpec(root, ((FIELD_GID, gid),), label=f"gid{gid}"),),
                    gid=gid,
                )
            )
        return out or [
            Scenario(name, name, root, (TriggerSpec(root, label=name),))
        ]
    if name == "blackhole":
        probe = TriggerSpec(root, ((FIELD_REPEAT, REPEAT_PROBE),), label="probe")
        verify = TriggerSpec(
            root,
            ((FIELD_REPEAT, REPEAT_VERIFY),),
            at_quiescence=True,
            label="verify",
        )
        return [
            Scenario(
                f"blackhole:{'+'.join(map(str, sorted(bh))) or 'clean'}",
                name,
                root,
                (probe, verify),
                blackholes=bh,
                allow_failures=False,
            )
            for bh in _blackhole_placements(topology, max_failures)
        ]
    if name == "blackhole_ttl":
        ttl = 4 * topology.num_edges + 4
        return [
            Scenario(
                f"blackhole_ttl:{'+'.join(map(str, sorted(bh))) or 'clean'}",
                name,
                root,
                (TriggerSpec(root, ((FIELD_TTL, ttl),), label="probe"),),
                blackholes=bh,
                allow_failures=False,
            )
            for bh in _blackhole_placements(topology, max_failures)
        ]
    # Unknown service: explore the bare trigger so the loop/integrity
    # invariants still apply.
    return [Scenario(name, name, root, (TriggerSpec(root, label=name),))]


def hop_bound(service_name: str, topology: Topology) -> int:
    """Per-packet hop budget (MC001), from the Table 2 closed forms.

    One full DFS is exactly ``4E - 2n + 2`` crossings
    (:func:`~repro.analysis.complexity.dfs_message_count`): tree edges are
    crossed twice, non-tree edges probed-and-bounced from both sides.  The
    blackhole echo handshake raises every edge to four crossings (``4E``),
    priocast runs two traversals, and the TTL probe carries a ``4E + 4``
    hop budget by construction.  A small slack absorbs the extra
    parent-return crossings failure rerouting can add.  Delegates to
    :func:`~repro.analysis.complexity.traversal_hop_bound` so the checker's
    hop budget and the supervisor's watchdog deadline share one source of
    truth.
    """
    from repro.analysis.complexity import traversal_hop_bound

    return traversal_hop_bound(
        service_name, topology.num_nodes, topology.num_edges
    )


# --------------------------------------------------------------------- #
# The stateful stepper (one packet through one compiled pipeline)       #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Emission:
    """One output of a pipeline step, with FF-selection provenance."""

    port: int  # resolved (IN_PORT replaced by the arrival port)
    cube: Cube
    stack: tuple
    source: str
    #: For emissions from a fast-failover bucket: did the group have
    #: another live bucket when this one was selected?  (MC006 evidence.)
    ff_alternative: bool | None = None


@dataclass
class StepOutcome:
    """Everything one packet step produced."""

    emissions: list[Emission] = dataclass_field(default_factory=list)
    #: (group_id, bucket index used, value that bucket writes).
    fetches: list[tuple[int, int, int | None]] = dataclass_field(
        default_factory=list
    )
    pops_on_empty: int = 0
    miss_table: int | None = None
    error: str | None = None


class StatefulStepper:
    """Deterministic executor for exact cubes on one compiled switch.

    Mirrors :meth:`Switch.process` exactly (emission snapshots, metadata
    masking, forward-only goto, group semantics) but runs on the symbolic
    layer's :class:`Cube` primitives and externalizes the two pieces of
    mutable environment: port liveness (the model's live-edge set) and the
    smart-counter cursors (fetch-and-increment through a callback, so the
    global state owns them).
    """

    MAX_PIPELINE_STEPS = Switch.MAX_PIPELINE_STEPS

    def __init__(self, switch: Switch, widths: FieldWidths) -> None:
        self.switch = switch
        self.widths = widths
        self.entries = {
            table_id: switch.tables[table_id].indexed_entries()
            for table_id in sorted(switch.tables)
        }

    def entry_cube(self, in_port: int, cube: Cube) -> Cube:
        """Rebase *cube* for pipeline entry: arrival port + metadata = 0."""
        constraints = dict(cube.constraints)
        constraints["metadata"] = (0, full_mask(METADATA_WIDTH))
        return Cube(in_port, constraints)

    def step(
        self,
        in_port: int,
        cube: Cube,
        stack: Sequence[tuple],
        port_live: Callable[[int], bool],
        fetch: Callable[[Group], int],
    ) -> StepOutcome:
        out = StepOutcome()
        cur = self.entry_cube(in_port, cube)
        cur_stack = list(stack)
        table_id = 0
        steps = 0
        while True:
            steps += 1
            if steps > self.MAX_PIPELINE_STEPS:
                out.error = "pipeline-limit"
                return out
            entries = self.entries.get(table_id)
            if entries is None:
                out.error = f"missing-table:{table_id}"
                return out
            hit = None
            for _index, entry in entries:
                matched = cur.intersect_match(entry.match, self.widths)
                if matched is not None:
                    hit = (entry, matched)
                    break
            if hit is None:
                out.miss_table = table_id
                return out
            entry, matched = hit
            if matched.constraints != cur.constraints:
                # The cube was not exact on a matched field — the checker's
                # determinism assumption broke (never for compiled SmartSouth,
                # whose trigger classes pin every matched field).
                out.error = f"nonexact-match:{table_id}"
                return out
            cur = matched
            instructions = entry.instructions
            if instructions.write_metadata is not None:
                value, mask = instructions.write_metadata
                cur = cur.write_metadata(value, mask, self.widths)
            source = entry.cookie or f"table{table_id}"
            cur, cur_stack = self._apply_actions(
                instructions.apply_actions,
                cur,
                cur_stack,
                in_port,
                port_live,
                fetch,
                out,
                source,
                frozenset(),
                None,
            )
            if out.error is not None:
                return out
            goto = instructions.goto_table
            if goto is None:
                return out
            if goto <= table_id:
                out.error = f"goto-backward:{table_id}->{goto}"
                return out
            table_id = goto

    def _apply_actions(
        self,
        actions,
        cube: Cube,
        stack: list,
        in_port: int,
        port_live,
        fetch,
        out: StepOutcome,
        source: str,
        active_groups: frozenset[int],
        ff_alternative: bool | None,
    ) -> tuple[Cube, list]:
        for action in actions:
            if out.error is not None:
                return cube, stack
            if isinstance(action, SetField):
                cube = cube.set_field(action.name, action.value, self.widths)
            elif isinstance(action, Output):
                port = in_port if action.port == IN_PORT else action.port
                out.emissions.append(
                    Emission(port, cube, tuple(stack), source, ff_alternative)
                )
            elif isinstance(action, DecTtl):
                cube = cube.dec_field(action.field_name, self.widths)
            elif isinstance(action, PushLabel):
                stack.append(action.record)
            elif isinstance(action, PopLabel):
                for _ in range(action.count):
                    if stack:
                        stack.pop()
                    else:
                        out.pops_on_empty += 1
            elif isinstance(action, GroupAction):
                cube, stack = self._exec_group(
                    action.group_id,
                    cube,
                    stack,
                    in_port,
                    port_live,
                    fetch,
                    out,
                    source,
                    active_groups,
                )
            # Unknown actions: none exist in this codebase.
        return cube, stack

    def _exec_group(
        self,
        group_id: int,
        cube: Cube,
        stack: list,
        in_port: int,
        port_live,
        fetch,
        out: StepOutcome,
        source: str,
        active_groups: frozenset[int],
    ) -> tuple[Cube, list]:
        if group_id in active_groups:
            out.error = f"group-loop:{group_id}"
            return cube, stack
        if group_id not in self.switch.groups:
            out.error = f"unknown-group:{group_id}"
            return cube, stack
        group = self.switch.groups.get(group_id)
        active = active_groups | {group_id}
        tag = f"{source}|group:{group_id}"

        def run_bucket(bucket, start_cube, start_stack, ff_alt):
            return self._apply_actions(
                bucket.actions,
                start_cube,
                start_stack,
                in_port,
                port_live,
                fetch,
                out,
                tag,
                active,
                ff_alt,
            )

        if group.group_type is GroupType.ALL:
            for bucket in group.buckets:
                run_bucket(bucket, cube, list(stack), None)  # clones
            return cube, stack
        if group.group_type is GroupType.INDIRECT:
            if group.buckets:
                return run_bucket(group.buckets[0], cube, stack, None)
            return cube, stack
        if group.group_type is GroupType.FF:
            live = [
                bucket.watch_port is None or port_live(bucket.watch_port)
                for bucket in group.buckets
            ]
            for index, bucket in enumerate(group.buckets):
                if live[index]:
                    alternative = any(
                        live[j] for j in range(len(live)) if j != index
                    )
                    return run_bucket(bucket, cube, stack, alternative)
            return cube, stack  # no live bucket: OpenFlow drops silently
        # SELECT (round robin): the cursor lives in the *global state*.
        if not group.buckets:
            out.error = f"empty-select:{group_id}"
            return cube, stack
        index = fetch(group)
        if not 0 <= index < len(group.buckets):
            out.error = f"select-cursor:{group_id}:{index}"
            return cube, stack
        out.fetches.append(
            (group_id, index, counter_bucket_value(group, index))
        )
        return run_bucket(group.buckets[index], cube, stack, None)


# --------------------------------------------------------------------- #
# Global state                                                          #
# --------------------------------------------------------------------- #


class PacketState:
    """One in-flight packet: location + exact header cube + label stack."""

    __slots__ = ("pid", "node", "in_port", "cube", "stack", "hops", "_key")

    def __init__(
        self,
        pid: int,
        node: int,
        in_port: int,
        cube: Cube,
        stack: tuple,
        hops: int,
    ) -> None:
        self.pid = pid
        self.node = node
        self.in_port = in_port
        self.cube = cube
        self.stack = stack
        self.hops = hops
        self._key: tuple | None = None

    def key(self) -> tuple:
        if self._key is None:
            self._key = (
                self.pid,
                self.node,
                self.in_port,
                self.cube.key(),
                self.stack,
                self.hops,
            )
        return self._key

    def describe(self) -> str:
        return (
            f"p{self.pid}@{self.node}"
            f"<-{port_name(self.in_port)} hops={self.hops}"
        )


class GlobalState:
    """One node of the explored transition system (immutable)."""

    __slots__ = (
        "packets",
        "live",
        "cursors",
        "failures_left",
        "next_trigger",
        "extra_left",
        "next_pid",
        "reports",
        "deliveries",
        "losses",
        "gate_epoch",
        "crash_left",
        "crash_mark",
        "down",
        "rebooted",
        "sw_crash_left",
        "sw_mark",
        "_key",
    )

    def __init__(
        self,
        packets: tuple[PacketState, ...],
        live: frozenset[int],
        cursors: tuple[tuple[tuple[int, int], int], ...],
        failures_left: int,
        next_trigger: int,
        extra_left: int,
        next_pid: int,
        reports: tuple,
        deliveries: tuple,
        losses: tuple,
        gate_epoch: int = 0,
        crash_left: int = 0,
        crash_mark: tuple[int, int] | None = None,
        down: frozenset[int] = frozenset(),
        rebooted: frozenset[int] = frozenset(),
        sw_crash_left: int = 0,
        sw_mark: tuple[int, int] | None = None,
    ) -> None:
        self.packets = packets
        self.live = live
        self.cursors = cursors
        self.failures_left = failures_left
        self.next_trigger = next_trigger
        self.extra_left = extra_left
        self.next_pid = next_pid
        self.reports = reports
        self.deliveries = deliveries
        self.losses = losses
        # Crash-scenario state: the origin gate's admitted epoch (0 = no
        # gate), whether the crash transition is still available, and the
        # (reports, deliveries) lengths at crash time (for MC010).
        self.gate_epoch = gate_epoch
        self.crash_left = crash_left
        self.crash_mark = crash_mark
        # Switch-crash scenario state: nodes currently down, nodes back up
        # but still bare (not re-adopted), whether the sw-crash transition
        # is still available, and the (reports, deliveries) lengths at
        # sw-crash time (for MC011).
        self.down = down
        self.rebooted = rebooted
        self.sw_crash_left = sw_crash_left
        self.sw_mark = sw_mark
        self._key: tuple | None = None

    def key(self) -> tuple:
        if self._key is None:
            self._key = (
                tuple(p.key() for p in self.packets),
                self.live,
                self.cursors,
                self.failures_left,
                self.next_trigger,
                self.extra_left,
                self.next_pid,
                self.reports,
                self.deliveries,
                self.losses,
                self.gate_epoch,
                self.crash_left,
                self.crash_mark,
                self.down,
                self.rebooted,
                self.sw_crash_left,
                self.sw_mark,
            )
        return self._key

    def evolve(self, **changes) -> "GlobalState":
        """A copy with *changes* applied (every other field carried over).

        The transition functions build successors through this so a new
        piece of scenario state (e.g. the switch-crash fields) cannot be
        silently dropped by a constructor call that predates it.
        """
        kwargs = {
            "packets": self.packets,
            "live": self.live,
            "cursors": self.cursors,
            "failures_left": self.failures_left,
            "next_trigger": self.next_trigger,
            "extra_left": self.extra_left,
            "next_pid": self.next_pid,
            "reports": self.reports,
            "deliveries": self.deliveries,
            "losses": self.losses,
            "gate_epoch": self.gate_epoch,
            "crash_left": self.crash_left,
            "crash_mark": self.crash_mark,
            "down": self.down,
            "rebooted": self.rebooted,
            "sw_crash_left": self.sw_crash_left,
            "sw_mark": self.sw_mark,
        }
        kwargs.update(changes)
        return GlobalState(**kwargs)


#: Observables: (node, ((field, value), ...), stack) for reports,
#: (node, ((field, value), ...)) for deliveries,
#: (kind, node, port, edge_id) for losses.


def _observe(cube: Cube) -> tuple:
    """Nonzero exact header fields of an emitted packet (stable order)."""
    return tuple(
        sorted((name, value) for name, value in cube.witness().items() if value)
    )


def obs_fields(observation: tuple) -> dict[str, int]:
    """The field dict of a report/delivery observable."""
    return dict(observation[1])


# --------------------------------------------------------------------- #
# Violations and the @invariant registry                                #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Violation:
    """One invariant violation (the payload of a counterexample)."""

    invariant: str
    name: str
    message: str
    node: int | None = None
    details: tuple[tuple[str, object], ...] = ()

    def to_dict(self) -> dict:
        out = {
            "invariant": self.invariant,
            "name": self.name,
            "message": self.message,
        }
        if self.node is not None:
            out["node"] = self.node
        if self.details:
            out["details"] = {k: v for k, v in self.details}
        return out

    def format(self) -> str:
        where = f" [node {self.node}]" if self.node is not None else ""
        return f"{self.invariant} {self.name}{where}: {self.message}"


@dataclass(frozen=True)
class Invariant:
    """A registered temporal invariant (mirror of ``LintRule``)."""

    invariant_id: str
    name: str
    scope: str  # "step" or "terminal"
    doc: str
    check: Callable

    def violation(
        self, message: str, node: int | None = None, **details
    ) -> Violation:
        return Violation(
            self.invariant_id,
            self.name,
            message,
            node,
            tuple(sorted(details.items())),
        )


#: invariant id -> Invariant, in registration order.
INVARIANTS: dict[str, Invariant] = {}


def invariant(invariant_id: str, name: str, scope: str):
    """Register a model-checking invariant (the ``@lint_rule`` analogue).

    ``scope`` is ``"step"`` (checked after every packet step, receiving the
    :class:`StepInfo`) or ``"terminal"`` (checked on quiescent states with
    all triggers injected).  The decorated function receives
    ``(ctx, state, info)`` / ``(ctx, state)`` and yields
    :class:`Violation` objects built via ``inv.violation(...)``.
    """
    if scope not in ("step", "terminal"):
        raise ValueError(f"unknown invariant scope {scope!r}")

    def register(func: Callable) -> Callable:
        if invariant_id in INVARIANTS:
            raise ValueError(f"duplicate invariant id {invariant_id}")
        # repro: allow[RACE001] import-time invariant registration, frozen before use
        INVARIANTS[invariant_id] = Invariant(
            invariant_id, name, scope, (func.__doc__ or "").strip(), func
        )
        return func

    return register


@dataclass
class StepInfo:
    """What one ``("step", pid)`` transition did (step-invariant input)."""

    pid: int
    node: int
    in_port: int
    outcome: StepOutcome
    new_packets: list[PacketState]
    losses_added: list[tuple]


class ModelContext:
    """Shared read-only context handed to invariants (lazy oracles)."""

    def __init__(
        self,
        topology: Topology,
        service,
        scenario: Scenario,
        widths: FieldWidths,
    ) -> None:
        self.topology = topology
        self.service = service
        self.scenario = scenario
        self.widths = widths
        self.all_edges = frozenset(range(topology.num_edges))
        self.hop_bound = hop_bound(service.name, topology)
        self._components: dict[frozenset[int], set[int]] = {}

    def full_environment(self, state: GlobalState) -> bool:
        """No link ever failed and no blackhole configured in this branch."""
        return state.live == self.all_edges and not self.scenario.blackholes

    def live_component(self, state: GlobalState) -> set[int]:
        """Nodes reachable from the root over the state's live edges."""
        cached = self._components.get(state.live)
        if cached is not None:
            return cached
        adjacency: dict[int, list[int]] = {
            u: [] for u in self.topology.nodes()
        }
        for edge_id in state.live:
            edge = self.topology.edge(edge_id)
            adjacency[edge.a.node].append(edge.b.node)
            adjacency[edge.b.node].append(edge.a.node)
        seen = {self.scenario.root}
        frontier = [self.scenario.root]
        while frontier:
            u = frontier.pop()
            for v in adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        self._components[state.live] = seen
        return seen

    def members(self, gid: int | None) -> frozenset[int]:
        """Configured receivers of *gid* (anycast groups / priocast bids)."""
        if gid is None:
            return frozenset()
        groups = getattr(self.service, "groups", None)
        if groups is not None:
            return frozenset(groups.get(gid, ()))
        priorities = getattr(self.service, "priorities", None)
        if priorities is not None:
            return frozenset(priorities.get(gid, {}))
        return frozenset()

    def environment_loss(self, state: GlobalState) -> bool:
        return any(loss[0] in ENVIRONMENT_LOSSES for loss in state.losses)


# --------------------------------------------------------------------- #
# Invariant implementations                                             #
# --------------------------------------------------------------------- #


@invariant("MC001", "no-forwarding-loop", "step")
def _check_loop(ctx: ModelContext, state: GlobalState, info: StepInfo):
    """A packet must not exceed the per-service hop budget (the paper's
    2·|E| traversal bound, doubled for echo/two-phase protocols), and no
    single pipeline may loop internally."""
    inv = INVARIANTS["MC001"]
    if info.outcome.error == "pipeline-limit":
        yield inv.violation(
            f"pipeline exceeded {StatefulStepper.MAX_PIPELINE_STEPS} steps "
            f"(rule loop inside the switch)",
            node=info.node,
        )
    for packet in info.new_packets:
        if packet.hops > ctx.hop_bound:
            yield inv.violation(
                f"packet p{packet.pid} exceeded the {ctx.hop_bound}-hop "
                f"budget (at node {packet.node}); the traversal is cycling",
                node=info.node,
                hops=packet.hops,
                bound=ctx.hop_bound,
            )


@invariant("MC002", "snapshot-record-sanity", "step")
def _check_record_pops(ctx: ModelContext, state: GlobalState, info: StepInfo):
    """A compiled pop must always find the record it deletes; popping an
    empty label stack means a topology record was lost."""
    if info.outcome.pops_on_empty:
        yield INVARIANTS["MC002"].violation(
            f"{info.outcome.pops_on_empty} pop(s) on an empty label stack",
            node=info.node,
        )


def _duplicate_link_records(records: Sequence[tuple]) -> list[tuple]:
    """Replay the snapshot decode and collect re-discovered links.

    Mirrors :func:`decode_snapshot` but *reports* duplicates (the decoder's
    set-union silently absorbs them) and swallows structural errors — those
    are reported separately via the real decoder.
    """
    links: set[frozenset] = set()
    duplicates: list[tuple] = []
    path: list[int] = []
    nodes: set[int] = set()
    current: int | None = None
    pending_out: int | None = None
    for record in records:
        kind = record[0]
        if kind == "visit":
            _, node, port = record
            if current is None:
                current = node
                nodes.add(node)
                continue
            if pending_out is None:
                return duplicates  # malformed: decode_snapshot reports it
            link = frozenset(((current, pending_out), (node, port)))
            if link in links:
                duplicates.append(record)
            links.add(link)
            pending_out = None
            if node not in nodes:
                nodes.add(node)
                path.append(current)
                current = node
        elif kind == "out":
            pending_out = record[1]
        elif kind == "ret":
            if not path:
                return duplicates
            current = path.pop()
            pending_out = None
        else:
            return duplicates
    return duplicates


@invariant("MC002T", "snapshot-record-stream", "terminal")
def _check_record_stream(ctx: ModelContext, state: GlobalState):
    """The final snapshot record stream must decode cleanly and must not
    record the same edge twice."""
    if ctx.service.name not in ("snapshot", "snapshot_chunked"):
        return
    from repro.core.services.snapshot import (
        SnapshotDecodeError,
        decode_snapshot,
    )

    inv = INVARIANTS["MC002T"]
    for node, fields, stack in state.reports:
        field_map = dict(fields)
        duplicates = _duplicate_link_records(stack)
        if duplicates:
            yield inv.violation(
                f"duplicate snapshot edge record(s) {duplicates[:3]} in the "
                f"report from node {node}",
                node=node,
            )
        if field_map.get(FIELD_SNAP_DONE):
            try:
                decode_snapshot(list(stack))
            except SnapshotDecodeError as exc:
                yield inv.violation(
                    f"final snapshot stream is malformed: {exc}", node=node
                )


@invariant("MC003", "counter-coherence", "step")
def _check_counters(ctx: ModelContext, state: GlobalState, info: StepInfo):
    """A smart counter's bucket j must write j: the fetched value must
    equal the round-robin cursor, or fetch-and-increment is broken and the
    verify phase reads garbage."""
    inv = INVARIANTS["MC003"]
    for group_id, index, value in info.outcome.fetches:
        if value is None:
            yield inv.violation(
                f"counter group {group_id} bucket {index} writes no field",
                node=info.node,
                group=group_id,
            )
        elif value != index:
            yield inv.violation(
                f"counter group {group_id} bucket {index} writes {value} "
                f"(fetch-and-increment must return the cursor)",
                node=info.node,
                group=group_id,
            )


@invariant("MC004", "traversal-completes", "terminal")
def _check_completion(ctx: ModelContext, state: GlobalState):
    """Bounded liveness: every quiescent run must have produced its
    service's completion observable (final report / delivery), unless the
    environment destroyed the packet (failed link, blackhole)."""
    inv = INVARIANTS["MC004"]
    name = ctx.service.name
    reports = [(n, dict(f), s) for n, f, s in state.reports]
    deliveries = [(n, dict(f)) for n, f in state.deliveries]

    if name == "blackhole":
        # The verify phase reports *before* crossing the suspect link, so a
        # verdict is due even when the probe phase was swallowed.
        if not any(f.get(FIELD_BH) for _n, f, _s in reports):
            yield inv.violation(
                "blackhole verify phase produced no verdict report"
            )
        return
    if name == "blackhole_ttl":
        if ctx.scenario.blackholes:
            return  # the swallow *is* the signal; MC005 checks its location
        if not any(f.get(FIELD_BH) == BH_DONE for _n, f, _s in reports):
            yield inv.violation(
                "TTL probe with a full budget never reported completion"
            )
        return

    if ctx.environment_loss(state):
        return  # a failed link / blackhole legitimately killed the run

    if name in ("plain", "critical"):
        if not reports:
            yield inv.violation("traversal never reported back to the root")
        return
    if name in ("snapshot", "snapshot_chunked"):
        done = [
            (n, f, s)
            for n, f, s in reports
            if f.get(FIELD_SNAP_DONE)
            or (name == "snapshot_chunked" and f.get(FIELD_REPORT_IN))
        ]
        done += [
            (n, f, ())
            for n, f in deliveries
            if f.get(FIELD_SNAP_DONE)  # in-band report variant
        ]
        if not done:
            yield inv.violation("snapshot never produced its final report")
            return
        if ctx.full_environment(state) and name == "snapshot":
            from repro.core.services.snapshot import (
                SnapshotDecodeError,
                decode_snapshot,
            )

            expected = ctx.topology.port_pair_set()
            for node, fields, stack in done:
                if not fields.get(FIELD_SNAP_DONE):
                    continue
                try:
                    _nodes, links = decode_snapshot(list(stack))
                except SnapshotDecodeError:
                    continue  # MC002T reports the malformed stream
                missing = expected - links
                if missing:
                    sample = sorted(tuple(sorted(pair)) for pair in missing)
                    yield inv.violation(
                        f"failure-free snapshot missed {len(missing)} "
                        f"link(s), e.g. {sample[0]}",
                        node=node,
                    )
        return
    if name in ("anycast", "priocast"):
        if name == "priocast" and not ctx.full_environment(state):
            # Priocast's phase-2 walk follows parent pointers recorded
            # during phase 1; a failure *between* the phases can route the
            # delivery packet to the winner on a non-parent port, which the
            # algorithm (correctly) refuses to treat as a delivery.  Only
            # the failure-free branch promises delivery.
            return
        members = ctx.members(ctx.scenario.gid) & ctx.live_component(state)
        if members and not deliveries:
            yield inv.violation(
                f"no delivery although member(s) {sorted(members)} of "
                f"gid {ctx.scenario.gid} are reachable from the root"
            )
        return
    # Unknown service: nothing to require.


@invariant("MC005", "blackhole-localized", "terminal")
def _check_blackhole_location(ctx: ModelContext, state: GlobalState):
    """A blackhole verdict must name one of the actually-blackholed links
    (smart counters: the FOUND report's port; TTL: the probe must die
    exactly on a blackholed link, never report 'clean')."""
    if not ctx.scenario.blackholes:
        return
    inv = INVARIANTS["MC005"]
    bh_edges = ctx.scenario.blackholes
    name = ctx.service.name
    if name == "blackhole":
        found = [
            (n, dict(f))
            for n, f, _s in state.reports
            if dict(f).get(FIELD_BH) == BH_FOUND
        ]
        if not found:
            yield inv.violation(
                f"blackholed link(s) {sorted(bh_edges)} never reported FOUND"
            )
            return
        node, fields = found[0]
        port = fields.get(FIELD_REPORT_PORT, 0)
        edge = ctx.topology.port_edge(node, port)
        if edge is None or edge.edge_id not in bh_edges:
            yield inv.violation(
                f"first FOUND report names ({node}, port {port}) which is "
                f"not a blackholed link {sorted(bh_edges)}",
                node=node,
            )
        return
    if name == "blackhole_ttl":
        if any(
            dict(f).get(FIELD_BH) == BH_DONE for _n, f, _s in state.reports
        ):
            yield inv.violation(
                f"TTL probe reported 'no blackhole' although link(s) "
                f"{sorted(bh_edges)} are blackholed"
            )
        swallowed = [
            loss for loss in state.losses if loss[0] == "swallowed"
        ]
        if not swallowed:
            yield inv.violation(
                f"TTL probe was never swallowed by blackholed link(s) "
                f"{sorted(bh_edges)}"
            )


@invariant("MC006", "failover-masks-failures", "step")
def _check_failover(ctx: ModelContext, state: GlobalState, info: StepInfo):
    """Fast-failover must never emit onto a dead port while the group
    still had a live bucket — that is the one job FF groups exist for."""
    inv = INVARIANTS["MC006"]
    for loss in info.losses_added:
        kind, node, port, _edge_id, ff_alternative = loss
        if kind == "dead_port" and ff_alternative:
            yield inv.violation(
                f"FF group at node {node} emitted on dead port {port} "
                f"although another live bucket existed",
                node=node,
                port=port,
            )


@invariant("MC007", "delivery-correctness", "terminal")
def _check_delivery(ctx: ModelContext, state: GlobalState):
    """Anycast must deliver only to members of the requested group;
    priocast must deliver to the highest-priority member (checked on
    failure-free branches, where the winner is well defined)."""
    name = ctx.service.name
    if name not in ("anycast", "priocast"):
        return
    inv = INVARIANTS["MC007"]
    gid = ctx.scenario.gid
    members = ctx.members(gid)
    for node, fields in state.deliveries:
        if node not in members:
            yield inv.violation(
                f"delivery at node {node} which is not a member of "
                f"gid {gid} (members: {sorted(members)})",
                node=node,
            )
    if name == "priocast" and ctx.full_environment(state):
        priorities = getattr(ctx.service, "priorities", {}).get(gid, {})
        if priorities:
            best = max(priorities.values())
            for node, fields in state.deliveries:
                got = priorities.get(node)
                if got is not None and got != best:
                    yield inv.violation(
                        f"priocast delivered to node {node} "
                        f"(priority {got}) but the best member has "
                        f"priority {best}",
                        node=node,
                    )


@invariant("MC008", "pipeline-integrity", "step")
def _check_integrity(ctx: ModelContext, state: GlobalState, info: StepInfo):
    """Structural execution errors — goto to a missing/earlier table,
    unknown or empty groups, group chains — must be unreachable."""
    error = info.outcome.error
    if error is not None and error != "pipeline-limit":
        yield INVARIANTS["MC008"].violation(
            f"pipeline execution error at node {info.node}: {error}",
            node=info.node,
        )


@invariant("MC009", "epoch-at-most-once", "terminal")
def _check_epoch_at_most_once(ctx: ModelContext, state: GlobalState):
    """Every supervised epoch yields at most one accepted observable.

    Supervised triggers carry a nonzero epoch tag; the origin-side gate
    squashes stale epochs, so by the end of an interleaving each nonzero
    epoch must have produced at most one *completion* observable — one
    terminal report, or one delivery for delivery-style services.  Epoch 0
    marks unsupervised traffic and is exempt (all pre-supervision scenarios
    stay green).  The complementary liveness half of the contract — "every
    epoch eventually yields exactly one result *or* an explicit degraded
    report" — lives where degraded reports exist, in the supervisor's
    ledger (:func:`repro.control.supervisor.check_epoch_ledger`), which
    ``tests/test_modelcheck.py`` checks against real supervised runs.

    The smart-counter blackhole verify sweep may emit several FOUND copies
    per walk (the documented spurious reports of its phase B, deduplicated
    at the origin by earliest-report-wins); for it, completion means the
    BH_DONE report, and FOUND multiplicity is not a violation.
    """
    inv = INVARIANTS["MC009"]
    service_name = ctx.service.name

    completions: dict[int, int] = {}

    def bump(epoch: int) -> None:
        if epoch:
            completions[epoch] = completions.get(epoch, 0) + 1

    for _node, fields, _stack in state.reports:
        obs = dict(fields)
        if service_name in ("blackhole", "blackhole_ttl"):
            if obs.get(FIELD_BH) != BH_DONE:
                continue
        bump(obs.get(FIELD_EPOCH, 0))
    if service_name in ("anycast", "priocast"):
        for _node, fields in state.deliveries:
            bump(dict(fields).get(FIELD_EPOCH, 0))

    for epoch, count in sorted(completions.items()):
        if count > 1:
            yield inv.violation(
                f"epoch {epoch} produced {count} completion observables; "
                f"at-most-once delivery violated"
            )


@invariant("MC010", "crash-at-most-once", "terminal")
def _check_crash_acceptance(ctx: ModelContext, state: GlobalState):
    """No pre-crash epoch may be accepted after a controller crash/resync.

    In a crash scenario the restarted controller resyncs its epoch clock
    past every in-flight epoch and retries under the new epoch; the origin
    gate alone — one match rule in the data plane, no controller-side
    filtering — must keep stale stragglers out.  Concretely: every report
    recorded *after* the crash transition must carry epoch 0 (unsupervised)
    or the post-crash epoch.  A violation means the data plane let a
    pre-crash result cross the resync boundary, so even a restarted
    controller that trusts every packet-in could double-accept — the
    at-most-once contract would silently depend on controller soft state
    that the crash just destroyed.

    Vacuous (no checks) unless the scenario has a crash and the crash
    actually happened in this interleaving.
    """
    crash = ctx.scenario.crash
    if crash is None or state.crash_mark is None:
        return
    inv = INVARIANTS["MC010"]
    _pre, post = crash
    for node, fields, _stack in state.reports[state.crash_mark[0]:]:
        epoch = dict(fields).get(FIELD_EPOCH, 0)
        if epoch and epoch != post:
            yield inv.violation(
                f"report at node {node} tagged epoch {epoch} was accepted "
                f"after the crash (restarted epoch is {post}); a stale "
                f"result crossed the resync boundary",
                node=node,
            )


@invariant("MC011", "switch-crash-under-claims", "terminal")
def _check_switch_crash(ctx: ModelContext, state: GlobalState):
    """A switch crash may silently under-claim, never fabricate.

    In a switch-crash scenario the victim node goes down mid-interleaving
    (arriving packets drop) and later reboots *bare* — tables, groups and
    fast-path state gone — so traffic through it miss-drops until
    re-adoption.  Both effects are honest degradation: the traversal may
    fail to complete (MC004 excuses the environment loss), but no
    observable recorded after the crash may be *wrong*:

    - the dead or bare victim must never produce a report or delivery
      (its stale pipeline must not run — the model mirrors
      :meth:`Switch.reboot <repro.openflow.switch.Switch.reboot>`, which
      empties the tables and invalidates the compiled fast path exactly so
      no pre-crash rule can fire post-reboot);
    - a snapshot report that does arrive must describe only links and
      nodes that truly exist — a partial map is an under-claim, a map
      with invented edges is a wrong result;
    - the crash machinery must only ever touch the configured victim.

    Vacuous unless the scenario has a switch crash and the crash actually
    happened in this interleaving.
    """
    victim = ctx.scenario.sw_crash
    if victim is None or state.sw_mark is None:
        return
    inv = INVARIANTS["MC011"]
    report_mark, delivery_mark = state.sw_mark
    for node, _fields, _stack in state.reports[report_mark:]:
        if node == victim:
            yield inv.violation(
                f"crashed switch {victim} produced a report after its "
                f"crash; a dead or bare switch must stay silent",
                node=node,
            )
    for node, _fields in state.deliveries[delivery_mark:]:
        if node == victim:
            yield inv.violation(
                f"crashed switch {victim} produced a delivery after its "
                f"crash; a dead or bare switch must stay silent",
                node=node,
            )
    for kind, node, _port, _edge in state.losses:
        if kind in ("sw_down", "sw_bare") and node != victim:
            yield inv.violation(
                f"switch-crash loss ({kind}) at node {node} although the "
                f"scenario's victim is {victim}",
                node=node,
            )
    if ctx.service.name in ("snapshot", "snapshot_chunked"):
        from repro.core.services.snapshot import (
            SnapshotDecodeError,
            decode_snapshot,
        )

        true_nodes = set(ctx.topology.nodes())
        true_links = ctx.topology.port_pair_set()
        for node, fields, stack in state.reports:
            if not dict(fields).get(FIELD_SNAP_DONE):
                continue
            try:
                nodes, links = decode_snapshot(list(stack))
            except SnapshotDecodeError:
                continue  # MC002T reports the malformed stream
            ghost_nodes = set(nodes) - true_nodes
            ghost_links = links - true_links
            if ghost_nodes or ghost_links:
                sample = sorted(ghost_nodes) or sorted(
                    tuple(sorted(pair)) for pair in ghost_links
                )
                yield inv.violation(
                    f"snapshot after a switch crash claims nonexistent "
                    f"topology elements, e.g. {sample[0]} — a wrong "
                    f"result, not an under-claim",
                    node=node,
                )


# --------------------------------------------------------------------- #
# The explorer                                                          #
# --------------------------------------------------------------------- #


@dataclass
class CheckConfig:
    """Knobs for :func:`run_check` (CLI flags map 1:1)."""

    max_failures: int = 1
    max_triggers: int = 1
    depth: int | None = None
    max_states: int = DEFAULT_STATE_BUDGET
    max_violations: int = DEFAULT_MAX_VIOLATIONS
    disable: set[str] = dataclass_field(default_factory=set)
    roots: Sequence[int] | None = None
    #: Also explore controller crash/recovery scenarios (MC010) for
    #: origin-reporting services.  Off by default: the crash machinery
    #: roughly doubles the scenario count for those services.
    crash: bool = False
    #: Also explore switch crash/reboot scenarios (MC011) for
    #: origin-reporting services — one scenario per non-root victim node,
    #: each with in-run link failures disabled.  Off by default.
    switch_crash: bool = False


@dataclass
class Counterexample:
    """A violation plus the minimized action trace that reaches it."""

    scenario: Scenario
    violation: Violation
    trace: tuple[tuple, ...]

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.to_dict(),
            "violation": self.violation.to_dict(),
            "trace": [list(action) for action in self.trace],
        }

    def format(self, topology: Topology | None = None) -> str:
        lines = [self.violation.format(), f"  scenario: {self.scenario.name}"]
        for action in self.trace:
            lines.append(f"  - {format_action(action, topology)}")
        return "\n".join(lines)


def format_action(action: tuple, topology: Topology | None = None) -> str:
    kind = action[0]
    if kind == "inject":
        return f"inject trigger #{action[1]}"
    if kind == "inject-extra":
        return "inject extra (concurrent) trigger"
    if kind == "fail":
        edge_id = action[1]
        if topology is not None:
            edge = topology.edge(edge_id)
            return f"fail link {edge_id} ({edge.a.node}-{edge.b.node})"
        return f"fail link {edge_id}"
    if kind == "step":
        return f"step packet p{action[1]}"
    if kind == "crash":
        return "controller crashes and restarts (gate resyncs)"
    if kind == "sw-crash":
        return f"switch {action[1]} crashes (in-flight packets there drop)"
    if kind == "sw-reboot":
        return f"switch {action[1]} reboots bare (tables and groups lost)"
    return repr(action)


class Explorer:
    """BFS over :class:`GlobalState` for one scenario.

    BFS (plus visited-state dedup) means the first trace reaching any
    violation is a *shortest* one — counterexamples come out minimal in
    length before the deletion-based minimizer even runs.
    """

    def __init__(
        self,
        steppers: Mapping[int, StatefulStepper],
        topology: Topology,
        scenario: Scenario,
        ctx: ModelContext,
        config: CheckConfig,
        invariants: Mapping[str, Invariant],
    ) -> None:
        self.steppers = steppers
        self.topology = topology
        self.scenario = scenario
        self.ctx = ctx
        self.config = config
        self.step_invariants = [
            inv for inv in invariants.values() if inv.scope == "step"
        ]
        self.terminal_invariants = [
            inv for inv in invariants.values() if inv.scope == "terminal"
        ]
        self.widths = ctx.widths
        self._trigger_cubes = [
            self._build_trigger_cube(spec) for spec in scenario.triggers
        ]

    # -- state construction ---------------------------------------------- #

    def _build_trigger_cube(self, spec: TriggerSpec) -> Cube:
        switches = {
            node: stepper.switch for node, stepper in self.steppers.items()
        }
        constraints = dict(
            zero_state_fields(switches, self.topology, self.widths)
        )
        service_id = getattr(self.ctx.service, "service_id", 0)
        overrides = dict(spec.fields)
        overrides.setdefault(FIELD_SVC, service_id)
        for name, value in overrides.items():
            self.widths.observe(name, value)
            constraints[name] = (
                value,
                full_mask(self.widths.width(name), value),
            )
        constraints.pop("metadata", None)
        return Cube(LOCAL_PORT, constraints)

    def initial_state(self) -> GlobalState:
        budget = (
            self.config.max_failures if self.scenario.allow_failures else 0
        )
        crash = self.scenario.crash
        return GlobalState(
            packets=(),
            live=self.ctx.all_edges,
            cursors=(),
            failures_left=budget,
            next_trigger=0,
            extra_left=max(0, self.config.max_triggers - 1),
            next_pid=0,
            reports=(),
            deliveries=(),
            losses=(),
            gate_epoch=crash[0] if crash else 0,
            crash_left=1 if crash else 0,
            crash_mark=None,
            sw_crash_left=1 if self.scenario.sw_crash is not None else 0,
        )

    def is_terminal(self, state: GlobalState) -> bool:
        return not state.packets and state.next_trigger >= len(
            self.scenario.triggers
        )

    # -- transitions ------------------------------------------------------ #

    def transitions(self, state: GlobalState) -> list[tuple]:
        actions: list[tuple] = [("step", p.pid) for p in state.packets]
        if state.next_trigger < len(self.scenario.triggers):
            spec = self.scenario.triggers[state.next_trigger]
            if (
                (not spec.at_quiescence or not state.packets)
                and (not spec.after_crash or state.crash_left == 0)
                and (
                    not spec.after_reboot
                    or (state.sw_crash_left == 0 and not state.down)
                )
            ):
                actions.append(("inject", state.next_trigger))
        if state.crash_left > 0 and state.next_trigger > 0:
            actions.append(("crash",))
        if (
            state.sw_crash_left > 0
            and self.scenario.sw_crash is not None
            and state.next_trigger > 0
        ):
            actions.append(("sw-crash", self.scenario.sw_crash))
        for node in sorted(state.down):
            actions.append(("sw-reboot", node))
        if (
            state.extra_left > 0
            and self.scenario.triggers
            and state.next_trigger > 0
        ):
            actions.append(("inject-extra",))
        if (
            self.scenario.allow_failures
            and state.failures_left > 0
            and (
                state.packets
                or state.next_trigger < len(self.scenario.triggers)
            )
        ):
            actions.extend(("fail", edge_id) for edge_id in sorted(state.live))
        return actions

    def apply(
        self, state: GlobalState, action: tuple
    ) -> tuple[GlobalState, StepInfo | None] | None:
        """Apply *action*; None when it is not applicable in *state*."""
        kind = action[0]
        if kind == "inject":
            index = action[1]
            if index != state.next_trigger or index >= len(
                self.scenario.triggers
            ):
                return None
            spec = self.scenario.triggers[index]
            if spec.at_quiescence and state.packets:
                return None
            if spec.after_crash and state.crash_left > 0:
                return None
            if spec.after_reboot and (state.sw_crash_left > 0 or state.down):
                return None
            packet = PacketState(
                state.next_pid,
                spec.root,
                LOCAL_PORT,
                self._trigger_cubes[index],
                (),
                0,
            )
            return (
                state.evolve(
                    packets=state.packets + (packet,),
                    next_trigger=state.next_trigger + 1,
                    next_pid=state.next_pid + 1,
                ),
                None,
            )
        if kind == "inject-extra":
            if state.extra_left <= 0 or not self.scenario.triggers:
                return None
            packet = PacketState(
                state.next_pid,
                self.scenario.triggers[0].root,
                LOCAL_PORT,
                self._trigger_cubes[0],
                (),
                0,
            )
            return (
                state.evolve(
                    packets=state.packets + (packet,),
                    extra_left=state.extra_left - 1,
                    next_pid=state.next_pid + 1,
                ),
                None,
            )
        if kind == "crash":
            # The controller dies and restarts: its epoch clock resyncs past
            # every epoch that may still be in flight and the retry installs
            # the origin gate for the new epoch.  The data plane is
            # untouched — in-flight packets keep flying (the paper's point).
            if state.crash_left <= 0 or self.scenario.crash is None:
                return None
            return (
                state.evolve(
                    gate_epoch=self.scenario.crash[1],
                    crash_left=0,
                    crash_mark=(len(state.reports), len(state.deliveries)),
                ),
                None,
            )
        if kind == "sw-crash":
            # The victim box dies: packets that arrive there are dropped on
            # the floor (sw_down losses when stepped) until it reboots.
            node = action[1]
            if (
                state.sw_crash_left <= 0
                or self.scenario.sw_crash != node
                or node in state.down
            ):
                return None
            return (
                state.evolve(
                    down=state.down | {node},
                    sw_crash_left=state.sw_crash_left - 1,
                    sw_mark=state.sw_mark
                    or (len(state.reports), len(state.deliveries)),
                ),
                None,
            )
        if kind == "sw-reboot":
            # The victim comes back up *bare*: flow tables, groups and
            # fast-path state are gone, so until re-adoption every packet
            # arriving there miss-drops (sw_bare losses when stepped).
            node = action[1]
            if node not in state.down:
                return None
            return (
                state.evolve(
                    down=state.down - {node},
                    rebooted=state.rebooted | {node},
                ),
                None,
            )
        if kind == "fail":
            edge_id = action[1]
            if (
                state.failures_left <= 0
                or edge_id not in state.live
                or not self.scenario.allow_failures
            ):
                return None
            return (
                state.evolve(
                    live=state.live - {edge_id},
                    failures_left=state.failures_left - 1,
                ),
                None,
            )
        if kind == "step":
            pid = action[1]
            packet = next((p for p in state.packets if p.pid == pid), None)
            if packet is None:
                return None
            return self._apply_step(state, packet)
        return None

    def _apply_step(
        self, state: GlobalState, packet: PacketState
    ) -> tuple[GlobalState, StepInfo]:
        node = packet.node
        dropped = self._switch_drops(state, packet)
        if dropped is not None:
            return dropped
        squashed = self._gate_squashes(state, packet)
        if squashed is not None:
            return squashed
        stepper = self.steppers[node]
        live = state.live

        def port_live(port: int) -> bool:
            edge = self.topology.port_edge(node, port)
            return edge is not None and edge.edge_id in live

        cursors = dict(state.cursors)

        def fetch(group: Group) -> int:
            key = (node, group.group_id)
            cursor = cursors.get(key, group.rr_next)
            cursors[key] = (cursor + 1) % len(group.buckets)
            return cursor

        outcome = stepper.step(
            packet.in_port, packet.cube, packet.stack, port_live, fetch
        )

        new_packets: list[PacketState] = []
        losses: list[tuple] = []
        reports: list[tuple] = []
        deliveries: list[tuple] = []
        next_pid = state.next_pid
        for emission in outcome.emissions:
            if emission.port == CONTROLLER_PORT:
                reports.append(
                    (node, _observe(emission.cube), emission.stack)
                )
                continue
            if emission.port == LOCAL_PORT:
                deliveries.append((node, _observe(emission.cube)))
                continue
            if not is_physical_port(emission.port):
                losses.append(
                    ("dead_port", node, emission.port, -1,
                     emission.ff_alternative)
                )
                continue
            edge = self.topology.port_edge(node, emission.port)
            if edge is None or edge.edge_id not in live:
                losses.append(
                    (
                        "dead_port",
                        node,
                        emission.port,
                        -1 if edge is None else edge.edge_id,
                        emission.ff_alternative,
                    )
                )
                continue
            if edge.edge_id in self.scenario.blackholes:
                losses.append(
                    ("swallowed", node, emission.port, edge.edge_id, None)
                )
                continue
            peer = self.topology.neighbor(node, emission.port)
            arrival = Cube(
                peer.port, dict(emission.cube.havoc("metadata").constraints)
            )
            new_packets.append(
                PacketState(
                    next_pid,
                    peer.node,
                    peer.port,
                    arrival,
                    emission.stack,
                    packet.hops + 1,
                )
            )
            next_pid += 1
        if outcome.miss_table is not None:
            losses.append(
                ("pipeline_miss", node, outcome.miss_table, -1, None)
            )

        remaining = tuple(p for p in state.packets if p.pid != packet.pid)
        new_state = state.evolve(
            packets=remaining + tuple(new_packets),
            cursors=tuple(sorted(cursors.items())),
            next_pid=next_pid,
            reports=state.reports + tuple(reports),
            deliveries=state.deliveries + tuple(deliveries),
            losses=state.losses
            + tuple((k, n, p, e) for k, n, p, e, _ in losses),
        )
        info = StepInfo(
            pid=packet.pid,
            node=node,
            in_port=packet.in_port,
            outcome=outcome,
            new_packets=new_packets,
            losses_added=losses,
        )
        return new_state, info

    def _gate_squashes(
        self, state: GlobalState, packet: PacketState
    ) -> tuple[GlobalState, StepInfo] | None:
        """Origin epoch gate: kill a stale-epoch packet entering the root.

        Mirrors :class:`~repro.core.epoch.EpochGate` — after a crash/resync
        the origin switch admits only tag 0 or the current epoch, so a
        pre-crash straggler can neither report a duplicate result nor keep
        traversing through the origin.  The squash is an environment loss
        ("squashed"), not a program bug.
        """
        if not state.gate_epoch or packet.node != self.scenario.root:
            return None
        constraint = packet.cube.constraints.get(FIELD_EPOCH)
        epoch = constraint[0] if constraint else 0
        if epoch in (0, state.gate_epoch):
            return None
        node = packet.node
        loss = ("squashed", node, packet.in_port, -1)
        new_state = state.evolve(
            packets=tuple(p for p in state.packets if p.pid != packet.pid),
            losses=state.losses + (loss,),
        )
        info = StepInfo(
            pid=packet.pid,
            node=node,
            in_port=packet.in_port,
            outcome=StepOutcome(),
            new_packets=[],
            losses_added=[loss + (None,)],
        )
        return new_state, info

    def _switch_drops(
        self, state: GlobalState, packet: PacketState
    ) -> tuple[GlobalState, StepInfo] | None:
        """A crashed or rebooted-bare switch destroys an arriving packet.

        Down switch: the box is dead, the frame falls on the floor
        ("sw_down").  Rebooted-but-bare switch: the box is up but its flow
        tables are empty — table 0 miss-drops everything ("sw_bare",
        mirroring :meth:`Switch.reboot <repro.openflow.switch.Switch.reboot>`
        semantics before re-adoption).  Both are environment losses: a
        switch crash may silently under-claim, never fabricate.  The
        stepper — which still holds the pre-crash program — is never
        consulted, exactly as the simulator's down/bare switch never runs
        its stale pipeline.
        """
        node = packet.node
        if node in state.down:
            kind = "sw_down"
        elif node in state.rebooted:
            kind = "sw_bare"
        else:
            return None
        loss = (kind, node, packet.in_port, -1)
        new_state = state.evolve(
            packets=tuple(p for p in state.packets if p.pid != packet.pid),
            losses=state.losses + (loss,),
        )
        info = StepInfo(
            pid=packet.pid,
            node=node,
            in_port=packet.in_port,
            outcome=StepOutcome(),
            new_packets=[],
            losses_added=[loss + (None,)],
        )
        return new_state, info

    # -- invariant evaluation --------------------------------------------- #

    def step_violations(
        self, state: GlobalState, info: StepInfo
    ) -> list[Violation]:
        out: list[Violation] = []
        for inv in self.step_invariants:
            out.extend(inv.check(self.ctx, state, info))
        return out

    def terminal_violations(self, state: GlobalState) -> list[Violation]:
        out: list[Violation] = []
        for inv in self.terminal_invariants:
            out.extend(inv.check(self.ctx, state))
        return out

    # -- deterministic re-execution (minimizer / validation) -------------- #

    def execute(
        self, actions: Iterable[tuple], close: bool = True
    ) -> list[Violation] | None:
        """Re-run *actions* from the initial state; None if inapplicable.

        With ``close=True`` the run is deterministically completed after
        the scripted actions (step the lowest-pid packet, inject pending
        triggers) so terminal invariants apply; this is exactly what the
        simulator replay does on its own.
        """
        state = self.initial_state()
        violations: list[Violation] = []
        for action in actions:
            applied = self.apply(state, action)
            if applied is None:
                return None
            state, info = applied
            if info is not None:
                violations.extend(self.step_violations(state, info))
        if close:
            guard = 0
            limit = 64 * (self.topology.num_edges + 2) * max(
                1, len(self.scenario.triggers) + self.config.max_triggers
            )
            while not self.is_terminal(state):
                guard += 1
                if guard > limit:
                    break
                if state.packets:
                    action = ("step", state.packets[0].pid)
                elif (
                    state.crash_left > 0
                    and state.next_trigger < len(self.scenario.triggers)
                    and self.scenario.triggers[state.next_trigger].after_crash
                ):
                    # The pending trigger waits for the crash; fire it so
                    # the closure can reach a terminal state.
                    action = ("crash",)
                elif (
                    state.sw_crash_left > 0
                    and state.next_trigger < len(self.scenario.triggers)
                    and self.scenario.triggers[state.next_trigger].after_reboot
                ):
                    # Likewise for a pending post-reboot retry: crash the
                    # victim, then (next iteration) reboot it.
                    action = ("sw-crash", self.scenario.sw_crash)
                elif state.down and state.next_trigger < len(
                    self.scenario.triggers
                ):
                    action = ("sw-reboot", min(state.down))
                else:
                    action = ("inject", state.next_trigger)
                applied = self.apply(state, action)
                if applied is None:
                    break
                state, info = applied
                if info is not None:
                    violations.extend(self.step_violations(state, info))
            if self.is_terminal(state):
                violations.extend(self.terminal_violations(state))
        return violations

    def minimize(
        self, trace: tuple[tuple, ...], violation: Violation
    ) -> tuple[tuple, ...]:
        """Greedily delete environment actions the violation survives
        without (the trace is already shortest-by-BFS)."""

        def reproduces(candidate) -> bool:
            violations = self.execute(candidate, close=True)
            return violations is not None and any(
                v.invariant == violation.invariant and v.node == violation.node
                for v in violations
            )

        current = list(trace)
        for index in reversed(range(len(current))):
            if current[index][0] not in ("fail", "inject-extra"):
                continue
            candidate = current[:index] + current[index + 1 :]
            if reproduces(candidate):
                current = candidate
        return tuple(current)

    # -- the search -------------------------------------------------------- #

    def explore(self) -> tuple[list[Counterexample], int, bool]:
        initial = self.initial_state()
        init_key = initial.key()
        states: dict[tuple, GlobalState] = {init_key: initial}
        parent: dict[tuple, tuple | None] = {init_key: None}
        depth: dict[tuple, int] = {init_key: 0}
        queue: deque[tuple] = deque([init_key])
        found: list[Counterexample] = []
        seen_violations: set[tuple] = set()
        explored = 0
        exhausted = False

        def trace_to(key: tuple) -> tuple[tuple, ...]:
            actions: list[tuple] = []
            while parent[key] is not None:
                prev_key, action = parent[key]
                actions.append(action)
                key = prev_key
            return tuple(reversed(actions))

        def record(violation: Violation, key: tuple) -> None:
            dedup = (violation.invariant, violation.node, violation.message)
            if dedup in seen_violations:
                return
            seen_violations.add(dedup)
            trace = self.minimize(trace_to(key), violation)
            found.append(Counterexample(self.scenario, violation, trace))

        while queue:
            if explored >= self.config.max_states:
                exhausted = True
                break
            if len(found) >= self.config.max_violations:
                break
            key = queue.popleft()
            state = states[key]
            explored += 1
            if self.is_terminal(state):
                for violation in self.terminal_violations(state):
                    record(violation, key)
                continue
            if (
                self.config.depth is not None
                and depth[key] >= self.config.depth
            ):
                exhausted = True
                continue
            for action in self.transitions(state):
                applied = self.apply(state, action)
                if applied is None:
                    continue
                new_state, info = applied
                new_key = new_state.key()
                fresh = new_key not in parent
                if fresh:
                    parent[new_key] = (key, action)
                    states[new_key] = new_state
                    depth[new_key] = depth[key] + 1
                violations = (
                    self.step_violations(new_state, info)
                    if info is not None
                    else []
                )
                if violations:
                    for violation in violations:
                        record(violation, new_key)
                    continue  # prune the violating branch
                if fresh:
                    queue.append(new_key)
        return found, explored, exhausted


# --------------------------------------------------------------------- #
# Reports and entry points                                              #
# --------------------------------------------------------------------- #


@dataclass
class CheckReport:
    """Aggregate result of :func:`run_check` (the lint-report analogue)."""

    counterexamples: list[Counterexample]
    states: int = 0
    scenarios: int = 0
    exhausted: bool = False
    topology_name: str = ""
    service_name: str = ""

    @property
    def exit_code(self) -> int:
        """1 = violations found, 2 = state budget exhausted, 0 = clean."""
        if self.counterexamples:
            return 1
        if self.exhausted:
            return 2
        return 0

    def summary(self) -> str:
        status = (
            f"{len(self.counterexamples)} violation(s)"
            if self.counterexamples
            else ("exhausted" if self.exhausted else "clean")
        )
        return (
            f"check: {status}, {self.states} state(s) across "
            f"{self.scenarios} scenario(s)"
        )

    def format_text(self, topology: Topology | None = None) -> str:
        lines = [self.summary()]
        for cex in self.counterexamples:
            lines.append("")
            lines.append(cex.format(topology))
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "summary": self.summary(),
                "service": self.service_name,
                "states": self.states,
                "scenarios": self.scenarios,
                "exhausted": self.exhausted,
                "exit_code": self.exit_code,
                "counterexamples": [
                    cex.to_dict() for cex in self.counterexamples
                ],
            },
            indent=2,
            sort_keys=True,
            default=str,
        )


def active_invariants(
    disable: set[str] | None = None,
    invariants: Mapping[str, Invariant] | None = None,
) -> dict[str, Invariant]:
    source = INVARIANTS if invariants is None else dict(invariants)
    disabled = disable or set()
    return {
        inv_id: inv
        for inv_id, inv in source.items()
        if inv_id not in disabled
    }


def run_check(
    switches: Mapping[int, Switch],
    topology: Topology,
    service,
    config: CheckConfig | None = None,
    invariants: Mapping[str, Invariant] | None = None,
) -> CheckReport:
    """Model-check compiled *switches* for *service* on *topology*."""
    config = config or CheckConfig()
    chosen = active_invariants(config.disable, invariants)
    widths = FieldWidths.for_switches(switches.values())
    steppers = {
        node: StatefulStepper(switch, widths)
        for node, switch in switches.items()
    }
    roots = list(config.roots) if config.roots else [0]
    counterexamples: list[Counterexample] = []
    states = 0
    scenario_count = 0
    exhausted = False
    for root in roots:
        for scenario in scenarios_for(
            service, topology, root, config.max_failures,
            crash=config.crash, switch_crash=config.switch_crash,
        ):
            scenario_count += 1
            ctx = ModelContext(topology, service, scenario, widths)
            explorer = Explorer(
                steppers, topology, scenario, ctx, config, chosen
            )
            found, explored, ran_out = explorer.explore()
            counterexamples.extend(found)
            states += explored
            exhausted = exhausted or ran_out
            if len(counterexamples) >= config.max_violations:
                break
        else:
            continue
        break
    counterexamples.sort(key=lambda c: (c.violation.invariant, c.scenario.name))
    return CheckReport(
        counterexamples=counterexamples,
        states=states,
        scenarios=scenario_count,
        exhausted=exhausted,
        topology_name=topology.name,
        service_name=service.name,
    )


def check_engine(engine, config: CheckConfig | None = None) -> CheckReport:
    """Install *engine* (compiled mode) and model-check its switches."""
    engine.install()
    switches = getattr(engine, "switches", None)
    if not switches:
        raise TypeError(
            "check_engine needs a compiled engine with per-node switches"
        )
    return run_check(
        switches, engine.network.topology, engine.service, config
    )


def iter_invariants() -> Iterator[Invariant]:
    """Registered invariants in registration order (docs / CLI listing)."""
    return iter(INVARIANTS.values())
