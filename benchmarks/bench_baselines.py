"""Experiments B-*: SmartSouth vs the controller-driven baselines.

Three head-to-heads, each reproducing one of the paper's motivating
arguments:

* **B-snapshot-vs-lldp** — topology discovered as the management plane
  degrades.  LLDP needs both ends of a link manageable; the in-band
  snapshot needs one connected switch, total.
* **B-blackhole-vs-probe** — out-of-band messages to localize a blackhole:
  Θ(E) controller probes vs the smart counters' 3 messages vs the TTL
  search's 2·log E.
* **B-anycast-vs-reactive** — delivery after link failures without
  controller intervention, plus the control-message cost the baseline pays
  to recover.
"""

from __future__ import annotations

import random


from repro.control.apps.probe_blackhole import ProbeBlackholeDetector
from repro.control.apps.reactive_routing import ReactiveAnycastRouting
from repro.control.apps.topology_service import LldpTopologyService
from repro.control.controller import Controller
from repro.core.runtime import SmartSouthRuntime
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi

from conftest import fmt_row

WIDTHS = (22, 12, 12, 14, 14)
TRIALS = 20
TOPO = erdos_renyi(24, 0.2, seed=11)


def test_snapshot_vs_lldp_disconnection_sweep(benchmark, emit):
    def sweep():
        rows = []
        for frac in (0.0, 0.25, 0.5, 0.75, 1.0 - 1.0 / TOPO.num_nodes):
            lldp_links = 0
            smart_links = 0
            lldp_msgs = 0
            for seed in range(TRIALS):
                rng = random.Random(seed)
                down = rng.sample(
                    range(TOPO.num_nodes), int(frac * TOPO.num_nodes)
                )
                # Baseline.
                controller = Controller(Network(TOPO))
                app = controller.register(LldpTopologyService())
                for node in down:
                    controller.channel.disconnect(node)
                lldp_links += len(app.discover())
                lldp_msgs += controller.channel.out_band_messages
                # SmartSouth, triggered via any still-connected switch.
                connected = [
                    u for u in TOPO.nodes() if u not in down
                ] or [0]
                runtime = SmartSouthRuntime(Network(TOPO), mode="compiled")
                snap = runtime.snapshot(connected[0])
                smart_links += len(snap.links)
            rows.append(
                (
                    frac,
                    lldp_links / TRIALS,
                    smart_links / TRIALS,
                    lldp_msgs / TRIALS,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("\n=== B-snapshot-vs-lldp: links discovered vs mgmt-plane outage ===")
    emit(fmt_row(
        ["disconnected frac", "lldp links", "smart links", "lldp msgs",
         f"(|E|={TOPO.num_edges})"], WIDTHS,
    ))
    for frac, lldp, smart, msgs in rows:
        emit(fmt_row([f"{frac:.2f}", f"{lldp:.1f}", f"{smart:.1f}",
                      f"{msgs:.0f}", ""], WIDTHS))
    # SmartSouth always sees everything; LLDP degrades monotonically.
    assert all(smart == TOPO.num_edges for _f, _l, smart, _m in rows)
    lldp_series = [lldp for _f, lldp, _s, _m in rows]
    assert lldp_series[0] == TOPO.num_edges
    assert lldp_series[-1] < TOPO.num_edges / 4
    assert all(a >= b for a, b in zip(lldp_series, lldp_series[1:]))


def test_blackhole_message_cost_comparison(benchmark, emit):
    victim = 7

    def compare():
        net = Network(TOPO)
        net.links[victim].set_blackhole()
        controller = Controller(net)
        detector = controller.register(ProbeBlackholeDetector())
        probe_result = detector.check()

        net2 = Network(TOPO)
        net2.links[victim].set_blackhole()
        smart = SmartSouthRuntime(net2, mode="compiled").detect_blackhole_smart(0)

        net3 = Network(TOPO)
        net3.links[victim].set_blackhole()
        ttl = SmartSouthRuntime(net3, mode="compiled").detect_blackhole_ttl(0)
        return probe_result, smart, ttl

    probe_result, smart, ttl = benchmark.pedantic(compare, rounds=1, iterations=1)
    emit("\n=== B-blackhole-vs-probe: localization cost (out-band / in-band) ===")
    emit(fmt_row(["method", "out-band", "in-band", "found", ""], WIDTHS))
    edge = TOPO.edge(victim)
    probe_found = bool(probe_result.silent)
    emit(fmt_row(["controller probing", probe_result.out_band_messages,
                  0, probe_found, ""], WIDTHS))
    emit(fmt_row(["smart counters", smart.out_band_messages,
                  smart.in_band_messages, smart.found, ""], WIDTHS))
    emit(fmt_row(["ttl binary search", ttl.out_band_messages,
                  ttl.in_band_messages, ttl.found, ""], WIDTHS))
    assert probe_found and smart.found and ttl.found
    assert smart.out_band_messages == 3
    assert smart.out_band_messages < ttl.out_band_messages
    assert ttl.out_band_messages < probe_result.out_band_messages
    # All three name the same link.
    link = {(edge.a.node, edge.a.port), (edge.b.node, edge.b.port)}
    assert smart.location in link and ttl.location in link
    assert probe_result.silent <= link


def test_blackhole_counter_polling_alternative(benchmark, emit):
    """Polling the counter groups instead of the in-band verify phase:
    Θ(n) management messages and blind wherever the channel is down."""
    from repro.control.apps.counter_polling import CounterPollingDetector
    from repro.control.apps.smartsouth_manager import SmartSouthManager
    from repro.core.fields import FIELD_REPEAT
    from repro.core.services.blackhole import BlackholeService, REPEAT_PROBE

    victim = 7

    def run():
        net = Network(TOPO)
        net.links[victim].set_blackhole()
        controller = Controller(net)
        manager = controller.register(SmartSouthManager([BlackholeService()]))
        poller = controller.register(CounterPollingDetector(manager.switches))
        manager.trigger(
            BlackholeService.service_id, 0, fields={FIELD_REPEAT: REPEAT_PROBE}
        )
        healthy_poll = poller.poll()
        # Now degrade the management plane at the blackhole's endpoints.
        edge = TOPO.edge(victim)
        controller.channel.disconnect(edge.a.node)
        controller.channel.disconnect(edge.b.node)
        degraded_poll = poller.poll()
        return healthy_poll, degraded_poll

    healthy, degraded = benchmark.pedantic(run, rounds=1, iterations=1)
    edge = TOPO.edge(victim)
    link = {(edge.a.node, edge.a.port), (edge.b.node, edge.b.port)}
    emit("\n=== B-blackhole counter-polling alternative ===")
    emit(f"healthy channel: found {sorted(healthy.suspects)} with "
         f"{healthy.out_band_messages} mgmt messages (smart counters: 3)")
    emit(f"endpoints unmanageable: found {sorted(degraded.suspects)} — "
         f"polling goes blind; the in-band verify phase would not")
    assert healthy.suspects and healthy.suspects <= link
    assert healthy.out_band_messages == 2 * TOPO.num_nodes
    assert degraded.suspects == set()


def test_anycast_vs_reactive_routing(benchmark, emit):
    members = {20, 22}

    def sweep():
        rows = []
        for kills in (0, 1, 2, 4):
            baseline_ok = anycast_ok = reachable = 0
            repair_msgs = 0
            for seed in range(TRIALS):
                rng = random.Random(seed * 7 + kills)

                # Baseline: path installed on the healthy view, then links die.
                # Half the failures are drawn from the installed path itself —
                # the adversarial-but-realistic case the paper motivates.
                net = Network(TOPO)
                controller = Controller(net)
                app = controller.register(ReactiveAnycastRouting({1: members}))
                install = app.install_path(0, 1)
                path_edges = [
                    TOPO.find_edge(u, v).edge_id
                    for u, v in zip(install.path, install.path[1:])
                ]
                dead = set(rng.sample(range(TOPO.num_edges), kills))
                if kills and path_edges:
                    dead |= set(rng.sample(path_edges, min((kills + 1) // 2, len(path_edges))))
                net.fail_edges(dead)
                delivered = app.send(0, install)
                component = _component(net, 0)
                if members & component:
                    reachable += 1
                    if delivered in members:
                        baseline_ok += 1
                    else:
                        _install, messages = app.repair(0, 1)
                        repair_msgs += messages

                # SmartSouth anycast on identical failures.
                net2 = Network(TOPO)
                net2.fail_edges(dead)
                runtime = SmartSouthRuntime(net2, mode="compiled")
                if runtime.anycast(0, 1, {1: members}).delivered_at in members:
                    anycast_ok += 1
            rows.append((kills, reachable, baseline_ok, anycast_ok, repair_msgs))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("\n=== B-anycast-vs-reactive: delivery w/o controller help "
         f"({TRIALS} trials) ===")
    emit(fmt_row(
        ["failures", "reachable", "baseline ok", "anycast ok", "repair msgs"],
        WIDTHS,
    ))
    for kills, reachable, baseline_ok, anycast_ok, repair_msgs in rows:
        emit(fmt_row([kills, reachable, baseline_ok, anycast_ok, repair_msgs],
                     WIDTHS))
        assert anycast_ok == reachable  # in-band anycast never misses
        if kills:
            assert baseline_ok <= anycast_ok


def _component(net, root: int) -> set[int]:
    adj: dict[int, set[int]] = {u: set() for u in net.topology.nodes()}
    for link in net.links:
        if link.up:
            adj[link.edge.a.node].add(link.edge.b.node)
            adj[link.edge.b.node].add(link.edge.a.node)
    seen = {root}
    stack = [root]
    while stack:
        u = stack.pop()
        for v in adj[u]:
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return seen
