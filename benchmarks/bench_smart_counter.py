"""Experiment X-packetloss (+ smart-counter microbenchmarks).

Reproduces the §3.3 packet-loss extension: per-port in/out smart counters,
compared across each link by a detection traversal, with several prime
moduli against wrap-around false negatives — including the paper's own
caveat ("counters may overflow ... a packet may be lost (a false
negative)"), measured explicitly.
"""

from __future__ import annotations

import random

import pytest

from repro.core.fields import FIELD_SCRATCH
from repro.core.runtime import SmartSouthRuntime
from repro.core.smart_counter import build_counter_group
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi, grid
from repro.openflow.group import GroupTable
from repro.openflow.packet import Packet

from conftest import fmt_row

WIDTHS = (16, 12, 14, 14, 16)
TRIALS = 15


def test_counter_fetch_throughput(benchmark):
    """Microbenchmark: fetch-and-increment through the group machinery."""
    table = GroupTable(lambda port: True)
    table.add(build_counter_group(1, 8))
    packet = Packet()

    def fetch():
        table.execute(1, packet, lambda port, pkt: None, in_port=1)
        return packet.get(FIELD_SCRATCH)

    benchmark(fetch)


@pytest.mark.parametrize("loss_rate", [0.05, 0.2, 0.5])
def test_loss_detection_accuracy(benchmark, emit, loss_rate):
    """Detection accuracy at different loss rates (moduli 5 and 7)."""
    topo = grid(3, 4)

    def trial_block():
        agree = flagged_total = lossy_total = 0
        for seed in range(TRIALS):
            net = Network(topo, seed=seed)
            rng = random.Random(seed)
            lossy = rng.sample(range(topo.num_edges), 3)
            for edge_id in lossy:
                net.links[edge_id].set_loss(loss_rate)
            runtime = SmartSouthRuntime(net)
            monitor = runtime.loss_monitor((5, 7))
            monitor.send_traffic(13)
            for link in net.links:
                link.clear()  # heal so the check traversal survives
            report = monitor.check(0)
            truth = monitor.detectable_losses()
            if report.flagged == truth:
                agree += 1
            flagged_total += len(report.flagged)
            lossy_total += len(truth)
        return agree, flagged_total, lossy_total

    agree, flagged, truth = benchmark.pedantic(trial_block, rounds=1, iterations=1)
    if loss_rate == 0.05:
        emit("\n=== X-packetloss: detection matches counter-visible ground "
             f"truth ({TRIALS} trials, moduli 5,7) ===")
        emit(fmt_row(
            ["loss rate", "exact match", "flagged dirs", "lossy dirs", ""],
            WIDTHS,
        ))
    emit(fmt_row([loss_rate, f"{agree}/{TRIALS}", flagged, truth, ""], WIDTHS))
    assert agree == TRIALS


def test_false_negative_rate_vs_moduli(benchmark, emit):
    """The overflow caveat, quantified: a loss count ≡ 0 mod every counter
    is invisible; more primes shrink the blind set exactly as predicted."""

    moduli_sets = [(5,), (5, 7), (5, 7, 11)]

    def analyse():
        rows = []
        for moduli in moduli_sets:
            product = 1
            for m in moduli:
                product *= m
            blind = [
                k for k in range(1, 400) if all(k % m == 0 for m in moduli)
            ]
            rows.append((moduli, product, len(blind), blind[:3]))
        return rows

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    emit("\n=== X-packetloss: blind loss counts (k in 1..399) per modulus set ===")
    emit(fmt_row(["moduli", "lcm", "#blind", "examples", ""], WIDTHS))
    for moduli, product, blind_count, examples in rows:
        emit(fmt_row([str(moduli), product, blind_count, str(examples), ""],
                     WIDTHS))
    assert [r[2] for r in rows] == [79, 11, 1]  # 399//5, 399//35, 399//385


def test_blind_spot_demonstrated_end_to_end(benchmark, emit):
    """Lose exactly lcm(5,7)=35 packets: the (5,7) monitor is blind, the
    (5,7,11) monitor catches it."""
    from repro.net.link import Direction
    from repro.net.topology import line

    def run():
        outcomes = {}
        for moduli in ((5, 7), (5, 7, 11)):
            net = Network(line(3))
            runtime = SmartSouthRuntime(net)
            monitor = runtime.loss_monitor(moduli)
            link = net.links[0]
            link.set_blackhole(Direction.A_TO_B)
            monitor.send_traffic(35)
            link.clear()
            outcomes[moduli] = len(monitor.check(0).flagged)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("\nX-packetloss blind spot: 35 lost packets -> "
         f"flagged with (5,7): {outcomes[(5, 7)]}, "
         f"with (5,7,11): {outcomes[(5, 7, 11)]}")
    assert outcomes[(5, 7)] == 0
    assert outcomes[(5, 7, 11)] >= 1


def test_counter_state_is_per_switch_group(benchmark, emit):
    """Smart counters really live in switch group state: two switches'
    counters advance independently under interleaved traffic."""
    topo = erdos_renyi(10, 0.3, seed=2)

    def run():
        from repro.core.engine import make_engine
        from repro.core.fields import FIELD_REPEAT
        from repro.core.services.blackhole import BlackholeService

        net = Network(topo)
        engine = make_engine(net, BlackholeService(), "compiled")
        engine.trigger(0, fields={FIELD_REPEAT: 3})
        # After the probe phase every healthy port counter reads >= 2.
        cursors = []
        for switch in engine.switches.values():
            for group in switch.groups.groups():
                from repro.openflow.group import GroupType

                if group.group_type is GroupType.SELECT:
                    cursors.append(group.rr_next)
        return cursors

    cursors = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"\nsmart counters after probe phase: min={min(cursors)}, "
         f"max={max(cursors)} (healthy ports count >= 2)")
    assert min(cursors) >= 2
