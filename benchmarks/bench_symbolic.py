"""Benchmark: symbolic lint wall-time as the node degree Δ grows.

The sweep template costs O(Δ²) rules per switch (C-tablesize), so the
symbolic analyses the lint rules share are the quadratic-degree hot path of
the static layer.  A star topology isolates Δ: the hub carries the full
O(Δ²) sweep block while every leaf stays constant-size.  The gate below is
the PR's acceptance bar — a full lint run must stay subsecond at Δ = 16.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.lint import run_lint
from repro.core.compiler import compile_service
from repro.core.services.base import PlainTraversalService
from repro.net.simulator import Network
from repro.net.topology import star

from conftest import fmt_row

DEGREES = [4, 8, 12, 16]
SUBSECOND_GATE_DELTA = 16
WIDTHS = (8, 8, 10, 12, 12)


def _lint_star(delta: int):
    """Compile plain traversal on a star with hub degree *delta*, lint it,
    and return (report, seconds)."""
    topo = star(delta + 1)
    service = PlainTraversalService()
    net = Network(topo)
    switches = {
        node: compile_service(net, node, service) for node in topo.nodes()
    }
    started = time.perf_counter()
    report = run_lint(switches, topo, service=service)
    elapsed = time.perf_counter() - started
    return report, elapsed


@pytest.mark.parametrize("delta", DEGREES)
def test_lint_walltime_vs_degree(benchmark, emit, delta):
    topo = star(delta + 1)
    service = PlainTraversalService()
    net = Network(topo)
    switches = {
        node: compile_service(net, node, service) for node in topo.nodes()
    }
    rules = sum(
        len(tbl) for sw in switches.values() for tbl in sw.tables.values()
    )
    started = time.perf_counter()
    report = benchmark(run_lint, switches, topo, service=service)
    elapsed = time.perf_counter() - started
    assert report.errors == []
    if benchmark.stats is not None:  # absent under --benchmark-disable
        elapsed = benchmark.stats.stats.mean
    if delta == DEGREES[0]:
        emit("\n=== bench_symbolic: lint wall-time vs node degree ===")
        emit(fmt_row(["delta", "nodes", "rules", "mean s", "errors"], WIDTHS))
    emit(fmt_row(
        [delta, topo.num_nodes, rules, f"{elapsed:.3f}", len(report.errors)],
        WIDTHS,
    ))


def test_subsecond_at_delta_16(emit):
    """The acceptance gate: one full lint pass at Δ = 16 under a second."""
    report, elapsed = _lint_star(SUBSECOND_GATE_DELTA)
    emit(f"\nlint at delta={SUBSECOND_GATE_DELTA}: {elapsed:.3f}s "
         f"({len(report.findings)} findings)")
    assert report.errors == []
    assert elapsed < 1.0, f"lint took {elapsed:.3f}s at delta 16"
