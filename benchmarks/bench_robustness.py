"""Experiment R-failover: fast failover keeps the data plane functions alive.

The paper's robustness claim (§1–2): "By additionally leveraging the
OpenFlow fast failover mechanism, the data plane functions can also be made
robust to failures."  This harness sweeps the number of pre-execution link
failures on 2-connected topologies and measures:

* traversal completion rate and node coverage *with* FF sweep groups, and
* the same with failover disabled (an ablation: the sweep group watches
  nothing, so the first dead port kills the packet — what a naive
  port-sequential encoding without FF would do).
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.core.engine import make_engine
from repro.core.services.base import PlainTraversalService
from repro.core.runtime import SmartSouthRuntime
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi, torus

from conftest import fmt_row

BASELINE_PATH = (
    Path(__file__).parent / "baselines" / "robustness_baseline.json"
)
WIDTHS = (10, 10, 14, 14, 16)
TRIALS = 30


def _disable_failover(engine) -> None:
    """Ablation: make every FF sweep bucket unconditional, so the group
    always fires its first bucket even when the port's link is down."""
    from repro.openflow.group import GroupType

    engine.install()
    for switch in engine.switches.values():
        for group in switch.groups.groups():
            if group.group_type is GroupType.FF:
                for bucket in group.buckets:
                    bucket.watch_port = None


def _coverage_trial(topology, kills: int, seed: int, failover: bool):
    rng = random.Random(seed)
    net = Network(topology)
    edge_ids = rng.sample(range(topology.num_edges), kills)
    net.fail_edges(edge_ids)
    engine = make_engine(net, PlainTraversalService(), "compiled")
    if not failover:
        _disable_failover(engine)
    result = engine.trigger(0)
    visited = {0}
    for u, _pu, v, _pv in net.trace.hop_sequence():
        visited.update((u, v))
    component = _live_component(net, 0)
    return bool(result.reports), visited == component


def _live_component(net, root: int) -> set[int]:
    adj: dict[int, set[int]] = {u: set() for u in net.topology.nodes()}
    for link in net.links:
        if link.up:
            adj[link.edge.a.node].add(link.edge.b.node)
            adj[link.edge.b.node].add(link.edge.a.node)
    seen = {root}
    frontier = [root]
    while frontier:
        u = frontier.pop()
        for v in adj[u]:
            if v not in seen:
                seen.add(v)
                frontier.append(v)
    return seen


@pytest.mark.parametrize("kills", [0, 1, 2, 4, 8])
def test_failover_sweep(benchmark, emit, kills):
    topo = torus(4, 4)  # 4-regular, stays connected under few failures

    def trial_block():
        with_ff = sum(
            _coverage_trial(topo, kills, seed, failover=True)[1]
            for seed in range(TRIALS)
        )
        without_ff = sum(
            _coverage_trial(topo, kills, seed, failover=False)[1]
            for seed in range(TRIALS)
        )
        return with_ff, without_ff

    with_ff, without_ff = benchmark.pedantic(trial_block, rounds=1, iterations=1)
    if kills == 0:
        emit("\n=== R-failover: live-component coverage rate, torus-4x4, "
             f"{TRIALS} trials ===")
        emit(fmt_row(
            ["failures", "", "FF on", "FF off", ""], WIDTHS,
        ))
    emit(fmt_row(
        [kills, "", f"{with_ff}/{TRIALS}", f"{without_ff}/{TRIALS}", ""],
        WIDTHS,
    ))
    # With FF the traversal always covers the live component.
    assert with_ff == TRIALS
    # Without FF any failure adjacent to the walk kills it.
    if kills >= 2:
        assert without_ff < TRIALS


@pytest.mark.parametrize("kills", [1, 3, 5])
def test_snapshot_under_failures(benchmark, emit, kills):
    """The snapshot stays exact on whatever remains reachable."""
    topo = erdos_renyi(24, 0.25, seed=3)

    def trial_block():
        exact = 0
        for seed in range(TRIALS):
            rng = random.Random(1000 + seed)
            net = Network(topo)
            net.fail_edges(rng.sample(range(topo.num_edges), kills))
            runtime = SmartSouthRuntime(net, mode="compiled")
            snap = runtime.snapshot(0)
            component = _live_component(net, 0)
            expected = {
                pair
                for pair in net.live_port_pairs()
                if all(endpoint[0] in component for endpoint in pair)
            }
            if snap.ok and snap.links == expected and snap.nodes == component:
                exact += 1
        return exact

    exact = benchmark.pedantic(trial_block, rounds=1, iterations=1)
    emit(
        f"R-failover snapshot: {kills} failures -> exact live snapshot in "
        f"{exact}/{TRIALS} trials"
    )
    assert exact == TRIALS


def test_anycast_vs_failures_sweep(benchmark, emit):
    """Delivery success as failures accumulate: in-band anycast succeeds
    exactly when a member stays reachable (no controller involved)."""
    topo = erdos_renyi(20, 0.25, seed=9)
    members = {17, 18}

    def sweep():
        rows = []
        for kills in (0, 2, 4, 8, 12):
            delivered = reachable = 0
            for seed in range(TRIALS):
                rng = random.Random(seed * 31 + kills)
                net = Network(topo)
                net.fail_edges(rng.sample(range(topo.num_edges), kills))
                runtime = SmartSouthRuntime(net, mode="compiled")
                result = runtime.anycast(0, 1, {1: members})
                component = _live_component(net, 0)
                if members & component:
                    reachable += 1
                    if result.delivered_at in members:
                        delivered += 1
                else:
                    assert result.delivered_at is None
            rows.append((kills, reachable, delivered))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("\n=== R-failover anycast: delivered / member-reachable trials ===")
    emit(fmt_row(["failures", "", "reachable", "delivered", ""], WIDTHS))
    for kills, reachable, delivered in rows:
        emit(fmt_row([kills, "", reachable, delivered, ""], WIDTHS))
        assert delivered == reachable  # delivery iff reachable, always


def test_supervision_under_loss_sweep(benchmark, emit):
    """Experiment R-supervision: epoch-tagged retries vs. silent loss.

    Fast failover only masks *visible* failures; a lossy link silently
    swallows the traversal and the unsupervised service simply never
    answers.  Sweep the per-crossing loss probability and compare the
    plain runtime's completion rate against the supervised runtime, whose
    watchdog + retry loop must always return — a fresh result or an
    explicit honest degradation, never a hang.
    """
    from repro.control.supervisor import SupervisedRuntime, SupervisorConfig

    topo = torus(3, 3)
    trials = 15

    def sweep():
        rows = []
        for loss in (0.0, 0.1, 0.2, 0.3):
            bare_done = supervised_done = answered = retries = 0
            for seed in range(trials):
                rng = random.Random(seed * 97 + int(loss * 100))
                lossy = rng.sample(range(topo.num_edges), 4)

                net = Network(topo, seed=seed)
                for edge_id in lossy:
                    net.links[edge_id].set_loss(loss)
                runtime = SmartSouthRuntime(net, mode="compiled")
                if runtime.snapshot(0).ok:
                    bare_done += 1

                net2 = Network(topo, seed=seed)
                for edge_id in lossy:
                    net2.links[edge_id].set_loss(loss)
                supervised = SupervisedRuntime(
                    net2, config=SupervisorConfig(max_attempts=6)
                )
                snap = supervised.snapshot(0)
                answered += 1  # the call returned (no hang) by construction
                if snap.ok:
                    supervised_done += 1
                retries += snap.supervision.attempts_used - 1
            rows.append((loss, bare_done, supervised_done, answered, retries))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("\n=== R-supervision: snapshot completion under silent loss, "
         f"torus-3x3, {trials} trials ===")
    emit(fmt_row(["loss", "bare ok", "supervised ok", "answered", "retries"],
                 WIDTHS))
    for loss, bare, sup, answered, retries in rows:
        emit(fmt_row([loss, f"{bare}/{trials}", f"{sup}/{trials}",
                      f"{answered}/{trials}", retries], WIDTHS))
        # The supervised runtime always answers; with retries it completes
        # at least as often as the single-shot bare runtime.
        assert answered == trials
        assert sup >= bare
    # Loss-free, both complete every time.
    assert rows[0][1] == trials and rows[0][2] == trials


def test_recovery_vs_control_loss_sweep(benchmark, emit, request):
    """Experiment R-control: recovery cost as the *control channel* degrades.

    Unlike ``test_supervision_under_loss_sweep`` (lossy data-plane links),
    here the data plane is healthy and the management channel drops the
    controller's own packet-outs.  Sweep the per-message loss probability
    and measure, per loss level:

    * the supervised snapshot's recovery time (simulator time to an
      answer — retries and backoff included, so it grows with loss);
    * attempts spent (the retry bill the channel extracts);
    * after a full controller crash/restart, whether ``resynchronize``
      converges and in how many handshake rounds.

    All metrics are seeded-simulator quantities, not wall-clock, so the
    committed baseline (``benchmarks/baselines/robustness_baseline.json``)
    is machine-independent.  The gate fails if a loss level stops
    recovering, stops converging, or its recovery time / attempt bill
    grows more than 50% over baseline.  After an intentional supervisor
    or channel change, regenerate with::

        PYTHONPATH=src python -m pytest benchmarks/bench_robustness.py \\
            --update-robustness-baseline
    """
    from repro.control.channel import ChannelFaultConfig, ControlChannel
    from repro.control.supervisor import SupervisedRuntime, SupervisorConfig
    from repro.net.topology import torus

    topo = torus(3, 3)
    trials = 12
    losses = (0.0, 0.1, 0.2, 0.3)

    def sweep():
        rows = []
        for loss in losses:
            recovered = attempts = converged = rounds = 0
            recovery_time = 0.0
            for seed in range(trials):
                net = Network(topo, seed=seed)
                faults = ChannelFaultConfig(
                    loss_prob=loss, delay=1.0,
                    seed=seed * 13 + int(loss * 100),
                )
                channel = ControlChannel(
                    net, faults=faults if faults.active else None
                )
                runtime = SupervisedRuntime(
                    net, mode="compiled",
                    config=SupervisorConfig(max_attempts=6),
                    channel=channel,
                )
                started = net.sim.now
                snap = runtime.snapshot(0)
                if not snap.degraded:
                    recovered += 1
                attempts += snap.supervision.attempts_used
                recovery_time += net.sim.now - started
                # Crash the controller and resynchronize over the same
                # lossy channel.
                channel.fail_controller()
                channel.restore_controller()
                report = runtime.resynchronize(0)
                if report.converged:
                    converged += 1
                rounds += report.rounds
            rows.append({
                "loss": loss,
                "recovered": recovered,
                "mean_attempts": attempts / trials,
                "mean_recovery_time": recovery_time / trials,
                "converged": converged,
                "mean_resync_rounds": rounds / trials,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit("\n=== R-control: supervised recovery vs control-channel loss, "
         f"torus-3x3, {trials} trials ===")
    emit(fmt_row(["loss", "recovered", "attempts", "rec. time",
                  "resync rounds"], WIDTHS))
    for row in rows:
        emit(fmt_row([
            row["loss"], f"{row['recovered']}/{trials}",
            f"{row['mean_attempts']:.2f}",
            f"{row['mean_recovery_time']:.1f}",
            f"{row['mean_resync_rounds']:.1f} ({row['converged']}/{trials})",
        ], WIDTHS))

    if request.config.getoption("--update-robustness-baseline"):
        baseline = json.loads(BASELINE_PATH.read_text())
        baseline["control_loss_sweep"] = {
            str(row["loss"]): {
                "mean_attempts": round(row["mean_attempts"], 2),
                "mean_recovery_time": round(row["mean_recovery_time"], 1),
            }
            for row in rows
        }
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        return

    baseline = json.loads(BASELINE_PATH.read_text())["control_loss_sweep"]
    for row in rows:
        level = f"loss={row['loss']}"
        # Liveness gates: every level recovers and every resync converges.
        assert row["recovered"] == trials, (
            f"{level}: only {row['recovered']}/{trials} supervised "
            "snapshots recovered a fresh exact answer"
        )
        assert row["converged"] == trials, (
            f"{level}: only {row['converged']}/{trials} post-crash "
            "resynchronizations converged"
        )
        # Cost gates: no >50% growth over the committed baseline.
        base = baseline[str(row["loss"])]
        for metric in ("mean_attempts", "mean_recovery_time"):
            ceiling = base[metric] * 1.5
            assert row[metric] <= ceiling, (
                f"{level}: {metric} {row[metric]:.2f} exceeds 1.5x the "
                f"committed baseline {base[metric]} — if intentional, "
                "rerun with --update-robustness-baseline"
            )
    # The sweep tells the paper's story: a lossier channel costs strictly
    # more retries than a fault-free one, but never correctness.
    assert rows[-1]["mean_attempts"] > rows[0]["mean_attempts"]


def test_recovery_vs_switch_loss_sweep(benchmark, emit, request):
    """Experiment R-switch: re-adoption cost as the *data plane* loses boxes.

    The control-loss sweep above degrades the management channel; here the
    switches themselves fail.  Sweep the number of simultaneously crashed
    switches on a torus: each victim reboots *bare* (tables, groups and
    fast-path state gone) with a seeded partial-install fault armed, and
    ``readopt`` must repair the fleet.  Per loss level we measure:

    * handshake rounds and interrupted pushes (the retry bill the fault
      model extracts);
    * whether re-adoption converged and the healed snapshot is exact.

    All metrics are seeded quantities, so the committed baseline
    (``switch_loss_sweep`` in ``robustness_baseline.json``) is
    machine-independent.  The gate fails if a level stops converging or
    healing, or if rounds / failed installs grow more than 50% over
    baseline.  Regenerate after an intentional change with::

        PYTHONPATH=src python -m pytest benchmarks/bench_robustness.py \\
            --update-robustness-baseline
    """
    from repro.control.supervisor import (
        READOPT_FAILED,
        SupervisedRuntime,
        SupervisorConfig,
    )
    from repro.openflow.switch import SwitchFaultConfig

    topo = torus(3, 3)
    trials = 12
    loss_levels = (1, 2, 3)

    def sweep():
        rows = []
        for victims in loss_levels:
            converged = healed = rounds = failed = 0
            for seed in range(trials):
                rng = random.Random(seed * 101 + victims)
                net = Network(topo, seed=seed)
                runtime = SupervisedRuntime(
                    net, mode="compiled",
                    config=SupervisorConfig(max_attempts=6),
                )
                assert runtime.snapshot(0).ok
                lost = rng.sample(range(1, topo.num_nodes), victims)
                for node in lost:
                    for switch in runtime.switches_at(node):
                        switch.crash()
                        switch.reboot()
                        switch.set_faults(SwitchFaultConfig(
                            partial_install_prob=0.6,
                            fail_budget=1,
                            seed=seed * 977 + node,
                        ))
                report = runtime.readopt()
                if report.converged:
                    converged += 1
                rounds += report.rounds
                failed += sum(
                    1 for attempt in report.attempts
                    if attempt.status == READOPT_FAILED
                )
                snap = runtime.snapshot(0)
                if snap.ok and snap.links == net.live_port_pairs():
                    healed += 1
            rows.append({
                "victims": victims,
                "converged": converged,
                "healed": healed,
                "mean_rounds": rounds / trials,
                "mean_failed_installs": failed / trials,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit("\n=== R-switch: re-adoption vs crashed switches, torus-3x3, "
         f"{trials} trials ===")
    emit(fmt_row(["victims", "converged", "healed", "rounds",
                  "failed inst."], WIDTHS))
    for row in rows:
        emit(fmt_row([
            row["victims"], f"{row['converged']}/{trials}",
            f"{row['healed']}/{trials}",
            f"{row['mean_rounds']:.2f}",
            f"{row['mean_failed_installs']:.2f}",
        ], WIDTHS))

    if request.config.getoption("--update-robustness-baseline"):
        baseline = json.loads(BASELINE_PATH.read_text())
        baseline["switch_loss_sweep"] = {
            str(row["victims"]): {
                "mean_rounds": round(row["mean_rounds"], 2),
                "mean_failed_installs": round(
                    row["mean_failed_installs"], 2
                ),
            }
            for row in rows
        }
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        return

    baseline = json.loads(BASELINE_PATH.read_text())["switch_loss_sweep"]
    for row in rows:
        level = f"victims={row['victims']}"
        assert row["converged"] == trials, (
            f"{level}: only {row['converged']}/{trials} re-adoptions "
            "converged"
        )
        assert row["healed"] == trials, (
            f"{level}: only {row['healed']}/{trials} healed snapshots "
            "were exact"
        )
        base = baseline[str(row["victims"])]
        for metric in ("mean_rounds", "mean_failed_installs"):
            ceiling = base[metric] * 1.5
            assert row[metric] <= ceiling, (
                f"{level}: {metric} {row[metric]:.2f} exceeds 1.5x the "
                f"committed baseline {base[metric]} — if intentional, "
                "rerun with --update-robustness-baseline"
            )
    # More lost boxes cost strictly more interrupted pushes to repair.
    assert (rows[-1]["mean_failed_installs"]
            > rows[0]["mean_failed_installs"])
