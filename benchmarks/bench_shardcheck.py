"""Benchmark: interprocedural pass cost — whole-program, still CI-cheap.

``smartsouth shardcheck`` builds the call graph, runs the effect
fixpoint, and judges every function against the ownership manifest, so
it is inherently pricier than the per-site sancheck.  It still has to
fit a pre-push hook, so this bench gates it two ways: an absolute
wall-clock ceiling on the full pass over ``src/repro`` and a throughput
floor against the committed baseline
(``benchmarks/baselines/shardcheck_baseline.json``), which catches the
fixpoint or the resolver accidentally going quadratic long before the
ceiling would.

After an intentional cost change, regenerate the baseline with::

    PYTHONPATH=src python -m pytest benchmarks/bench_shardcheck.py \
        --update-shardcheck-baseline
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis.static import build_models
from repro.analysis.static.callgraph import build_program
from repro.analysis.static.effects import build_effect_table
from repro.analysis.static.runner import (
    analyze_program,
    default_scan_root,
    run_shardcheck,
)
from repro.analysis.static.shardmodel import default_manifest

from conftest import fmt_row

BASELINE_PATH = Path(__file__).parent / "baselines" / "shardcheck_baseline.json"
#: Hard ceiling on one full interprocedural pass (absolute; generous for
#: slow CI runners — a quiet machine sits far under it).
GATE_SECONDS = 20.0
#: Fail if measured files/s drops below this fraction of the baseline.
REGRESSION_TOLERANCE = 0.5
WIDTHS = (26, 10, 12, 12)


def _load_baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


def test_full_repo_pass(benchmark, emit, request):
    """One complete shardcheck over src/repro: parse, call graph,
    effect fixpoint, rules, baseline, effects contract."""
    report = benchmark(run_shardcheck)
    assert report.exit_code == 0, report.format_text()
    assert report.resolution["resolution_rate"] >= 0.9
    mean = benchmark.stats.stats.mean if benchmark.stats is not None else 0.0
    rate = report.files / mean if mean else float("inf")

    emit("\n=== bench_shardcheck: full interprocedural pass over src/repro ===")
    emit(fmt_row(["metric", "files", "mean (s)", "files/s"], WIDTHS))
    emit(fmt_row(
        ["full pass", report.files, f"{mean:.3f}", f"{rate:.0f}"], WIDTHS
    ))

    assert mean < GATE_SECONDS, (
        f"shardcheck took {mean:.2f}s — too slow for a pre-push gate"
    )
    if request.config.getoption("--update-shardcheck-baseline"):
        BASELINE_PATH.write_text(json.dumps(
            {
                "description": (
                    "Committed interprocedural-pass throughput baseline "
                    "for bench_shardcheck.py. files_per_second is set well "
                    "under a quiet-machine measurement to absorb runner "
                    "noise; the bench fails below "
                    f"{REGRESSION_TOLERANCE:.0%} of it. Regenerate with: "
                    "PYTHONPATH=src python -m pytest "
                    "benchmarks/bench_shardcheck.py "
                    "--update-shardcheck-baseline"
                ),
                "files_per_second": round(rate / 2.0, 1),
            },
            indent=2, sort_keys=True,
        ) + "\n")
        return
    floor = _load_baseline()["files_per_second"] * REGRESSION_TOLERANCE
    assert rate > floor, (
        f"shardcheck throughput regressed: {rate:.0f} files/s < floor "
        f"{floor:.0f} (baseline x {REGRESSION_TOLERANCE})"
    )


def test_phase_split(emit):
    """Where the time goes: parse vs call graph vs fixpoint vs rules."""
    root = default_scan_root()
    started = time.perf_counter()
    models = build_models(root)
    parse_s = time.perf_counter() - started

    started = time.perf_counter()
    program = build_program(models)
    graph_s = time.perf_counter() - started

    manifest = default_manifest()
    started = time.perf_counter()
    build_effect_table(program, manifest)
    fixpoint_s = time.perf_counter() - started

    # The rules re-run the whole pipeline; isolate them by subtraction.
    started = time.perf_counter()
    findings, rules_run, _, _ = analyze_program(models)
    rules_s = max(
        0.0, (time.perf_counter() - started) - graph_s - fixpoint_s
    )

    emit("\n=== bench_shardcheck: phase split ===")
    emit(fmt_row(["phase", "files", "time (s)", "share"], WIDTHS))
    total = parse_s + graph_s + fixpoint_s + rules_s
    for phase, elapsed in (
        ("parse + model", parse_s),
        ("call graph", graph_s),
        ("effect fixpoint", fixpoint_s),
        ("EFF/SHARD rules", rules_s),
    ):
        emit(fmt_row(
            [phase, len(models), f"{elapsed:.3f}",
             f"{elapsed / total:.0%}" if total else "-"], WIDTHS,
        ))
    assert len(rules_run) == 7
    assert total < GATE_SECONDS
