"""Experiments C-headersize and C-tablesize: the paper's §3.5 scale claim.

The paper: with NoviKit-250-class switches ("32MB flow table space and full
support for extended match fields") and a 0.5 KB packet data section, the
algorithms "scale up to a few hundred nodes".  This harness measures, as a
function of network size:

* the packed SmartSouth header size (the per-node DFS tags are the
  "another O(n log n) bits" of Table 2's caption), against the 0.5 KB
  packet budget, and
* the compiled per-switch rule/group footprint (the sweep's O(Δ²) groups),
  against the 32 MB table budget,

then reports the largest feasible n for each constraint.
"""

from __future__ import annotations

import pytest

from repro.core.engine import CompiledEngine, make_engine
from repro.core.fields import TagLayout
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi

from conftest import fmt_row

PACKET_BUDGET_BITS = 512 * 8  # the paper's 0.5 KB data section
TABLE_BUDGET_BYTES = 32 * 1024 * 1024  # 32 MB flow table space

#: Rough per-object footprints of a hardware flow table (TCAM-entry-sized
#: rule, OF group with per-bucket action sets).  Deliberately generous so
#: the feasibility claim is conservative.
RULE_BYTES = 64
GROUP_BUCKET_BYTES = 32

SIZES = [20, 50, 100, 200, 400]
WIDTHS = (8, 6, 10, 12, 12, 14, 14)


def _mean_degree_graph(n: int):
    """Random graph with mean degree ~6, the regime the paper targets."""
    p = min(1.0, 6.0 / (n - 1))
    return erdos_renyi(n, p, seed=5)


@pytest.mark.parametrize("n", SIZES)
def test_header_size_vs_packet_budget(benchmark, emit, n):
    topo = _mean_degree_graph(n)
    layout = benchmark(TagLayout, topo)
    fits = layout.total_bits <= PACKET_BUDGET_BITS
    if n == SIZES[0]:
        emit("\n=== C-headersize: packed SmartSouth header vs 0.5KB budget ===")
        emit(fmt_row(
            ["n", "|E|", "tag bits", "total bits", "total bytes",
             "<=512B?", "bits/node"], WIDTHS,
        ))
    emit(fmt_row(
        [n, topo.num_edges, layout.tag_bits, layout.total_bits,
         layout.total_bytes, fits, round(layout.tag_bits / n, 1)], WIDTHS,
    ))
    # The paper's "few hundred nodes" claim: 400 nodes must still fit.
    assert fits


def test_header_budget_crossover(benchmark, emit):
    """Find the largest n (mean degree 6) whose header fits 0.5 KB."""

    def bisect() -> int:
        lo, hi = 10, 5000
        while hi - lo > 1:
            mid = (lo + hi) // 2
            layout = TagLayout(_mean_degree_graph(mid))
            if layout.total_bits <= PACKET_BUDGET_BITS:
                lo = mid
            else:
                hi = mid
        return lo

    largest = benchmark.pedantic(bisect, rounds=1, iterations=1)
    emit(f"\nC-headersize crossover: header fits 0.5KB up to n ≈ {largest}")
    # "a few hundred nodes" — the claim reproduces.
    assert 200 <= largest <= 2000


def switch_footprint_bytes(switch) -> int:
    rules = switch.rule_count() * RULE_BYTES
    buckets = sum(len(g.buckets) for g in switch.groups.groups())
    return rules + buckets * GROUP_BUCKET_BYTES


@pytest.mark.parametrize("n", [20, 50, 100, 200])
def test_table_footprint_vs_budget(benchmark, emit, n):
    topo = _mean_degree_graph(n)
    net = Network(topo)

    def compile_all():
        engine = make_engine(net, SnapshotService(), "compiled")
        engine.install()
        return engine

    engine = benchmark(compile_all)
    assert isinstance(engine, CompiledEngine)
    worst = max(switch_footprint_bytes(s) for s in engine.switches.values())
    total_rules = engine.total_rules()
    fits = worst <= TABLE_BUDGET_BYTES
    if n == 20:
        emit("\n=== C-tablesize: compiled snapshot footprint vs 32MB/switch ===")
        emit(fmt_row(
            ["n", "|E|", "rules", "groups", "worst B/sw", "<=32MB?", ""],
            WIDTHS,
        ))
    emit(fmt_row(
        [n, topo.num_edges, total_rules, engine.total_groups(),
         worst, fits, ""], WIDTHS,
    ))
    assert fits


def test_rule_blowup_is_quadratic_in_degree(benchmark, emit):
    """The honest cost of port-enumeration: rules/groups grow ~Δ²."""
    from repro.core.compiler import compile_service
    from repro.net.topology import star

    rows = []
    for hub_degree in (4, 8, 16, 32):
        topo = star(hub_degree + 1)
        net = Network(topo)
        switch = compile_service(net, 0, SnapshotService())
        rows.append((hub_degree, switch.rule_count(), switch.group_count()))

    def compile_hub():
        return compile_service(Network(star(33)), 0, SnapshotService())

    benchmark(compile_hub)
    emit("\n=== C-tablesize ablation: per-switch cost vs degree (hub of a star) ===")
    emit(fmt_row(["degree", "rules", "groups", "", "", "", ""], WIDTHS))
    for degree, rules, groups in rows:
        emit(fmt_row([degree, rules, groups, "", "", "", ""], WIDTHS))
    # Quadratic growth: 8x the degree -> ~64x the groups (within 2x slack).
    d0, r0, g0 = rows[0]
    d3, r3, g3 = rows[-1]
    ratio = (d3 / d0) ** 2
    assert g3 / g0 > ratio / 2
    assert r3 / r0 > ratio / 4
