"""Experiments for the paper's remarks and extensions.

* **X-chunked** (§3.1 remark) — snapshot split across bounded-size packets:
  chunk count and out-of-band cost vs the per-packet record budget.
* **X-load** (§4 remark) — per-link load inference from prime-modulus smart
  counters with CRT reconstruction.
* **X-multiservice** — all SmartSouth functions co-installed on one switch
  (svc-field dispatch), footprint vs single-service pipelines.
* **X-inband-report** (§3.5 remark) — verdicts delivered to a server at the
  root switch: complete in-band monitoring, 0 management messages.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import MultiServiceEngine, make_engine
from repro.core.runtime import SmartSouthRuntime
from repro.core.services.anycast import AnycastService, PriocastService
from repro.core.services.base import PlainTraversalService
from repro.core.services.blackhole import BlackholeService
from repro.core.services.critical import CriticalNodeService
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi, random_regular

from conftest import fmt_row

WIDTHS = (16, 12, 12, 14, 16)
TOPO = erdos_renyi(40, 0.12, seed=13)


@pytest.mark.parametrize("budget", [4, 8, 16, 64, 255])
def test_chunked_snapshot_sweep(benchmark, emit, budget):
    def run():
        runtime = SmartSouthRuntime(Network(TOPO), mode="compiled")
        return runtime.snapshot_chunked(0, max_records=budget)

    nodes, links, stats = benchmark(run)
    assert links == TOPO.port_pair_set()
    if budget == 4:
        emit("\n=== X-chunked: snapshot split across bounded packets "
             f"({TOPO.name}, {TOPO.num_edges} links) ===")
        emit(fmt_row(["budget", "chunks", "records", "out-band", "in-band"],
                     WIDTHS))
    emit(fmt_row(
        [budget, stats["chunks"], stats["records"], stats["out_band"],
         stats["in_band"]], WIDTHS,
    ))
    # Out-of-band cost is two messages per chunk round trip.
    assert stats["out_band"] == 2 * stats["chunks"]
    # Chunk count ~ records / budget.
    assert stats["chunks"] >= stats["records"] // (budget + 2)


def test_chunked_vs_plain_convergence(benchmark, emit):
    """With a budget beyond the record count the split degenerates to the
    plain snapshot (1 report, 2 out-of-band messages)."""

    def run():
        runtime = SmartSouthRuntime(Network(TOPO), mode="compiled")
        return runtime.snapshot_chunked(0, max_records=255)

    _nodes, _links, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    small = TOPO.num_edges * 2 + TOPO.num_nodes
    if stats["records"] <= 255:
        assert stats["chunks"] == 1 and stats["out_band"] == 2
    emit(f"X-chunked: budget 255 -> {stats['chunks']} chunk(s), "
         f"{stats['records']} records (stream bound {small})")


@pytest.mark.parametrize("moduli", [(5, 7), (5, 7, 11), (3, 5, 7, 11)])
def test_load_audit_accuracy(benchmark, emit, moduli):
    topo = random_regular(16, 4, seed=2)

    def run():
        runtime = SmartSouthRuntime(Network(topo))
        monitor = runtime.load_monitor(moduli)
        rng = random.Random(7)
        product = monitor.modulus_product
        loads = {
            (e.a.node, e.a.port): rng.randrange(0, min(product, 400))
            for e in topo.edges()
        }
        monitor.send_traffic(loads)
        report = monitor.audit(0)
        return report, monitor.ground_truth()

    report, truth = benchmark.pedantic(run, rounds=1, iterations=1)
    exact = report.loads == truth
    if moduli == (5, 7):
        emit("\n=== X-load: CRT load inference on regular-16-4 ===")
        emit(fmt_row(["moduli", "range", "ports", "exact", "in-band"],
                     WIDTHS))
    emit(fmt_row(
        [str(moduli), report.modulus_product, len(report.loads), exact,
         report.in_band_messages], WIDTHS,
    ))
    assert exact


def test_multiservice_footprint(benchmark, emit):
    topo = erdos_renyi(16, 0.25, seed=4)
    stack = [
        PlainTraversalService(),
        SnapshotService(),
        AnycastService({1: {5}}),
        PriocastService({1: {5: 9}}),
        BlackholeService(),
        CriticalNodeService(),
    ]

    def build():
        net = Network(topo)
        engine = MultiServiceEngine(net, stack, mode="compiled")
        engine.install()
        return engine

    engine = benchmark(build)
    multi_rules = engine.total_rules()
    single_rules = 0
    for service in stack:
        single = make_engine(Network(topo), type(service)() if not
                             isinstance(service, (AnycastService, PriocastService))
                             else service, "compiled")
        single.install()
        single_rules += single.total_rules()
    emit("\n=== X-multiservice: 6 services on one pipeline ===")
    emit(f"co-installed rules: {multi_rules}; "
         f"sum of single-service pipelines: {single_rules}; "
         f"dispatch overhead: {multi_rules - single_rules} rules")
    # Co-installation costs exactly one svc-dispatch rule per service per
    # switch; everything else is the relocated single-service blocks.
    assert multi_rules == single_rules + len(stack) * topo.num_nodes

    snap = engine.trigger(SnapshotService.service_id, 0)
    assert snap.reports


def test_inband_reporting_zero_management_messages(benchmark, emit):
    topo = erdos_renyi(20, 0.2, seed=6)

    def run():
        net = Network(topo)
        engine = make_engine(net, CriticalNodeService(inband_report=True),
                             "compiled")
        results = [engine.trigger(u, from_controller=False)
                   for u in topo.nodes()]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    total_out_band = sum(r.out_band_messages for r in results)
    verdicts = sum(1 for r in results if r.deliveries)
    emit("\n=== X-inband-report: critical scan of all nodes, verdicts to "
         "local servers ===")
    emit(f"nodes scanned: {len(results)}, verdicts delivered: {verdicts}, "
         f"management messages: {total_out_band}")
    assert verdicts == topo.num_nodes
    assert total_out_band == 0
