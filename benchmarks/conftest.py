"""Shared helpers for the benchmark harness.

Every benchmark prints the paper-style table it reproduces through the
``emit`` fixture, which bypasses pytest's output capture so the rows appear
in the ``pytest benchmarks/ --benchmark-only`` log (and hence in
``bench_output.txt`` / EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--batch",
        action="store_true",
        default=False,
        help="Run only the batched-drain benchmarks (tests marked 'batch', "
        "i.e. experiment F-batch in bench_fastpath.py).",
    )
    parser.addoption(
        "--update-fastpath-baseline",
        action="store_true",
        default=False,
        help="Rewrite benchmarks/baselines/fastpath_baseline.json with the "
        "speedups measured in this run (use after an intentional change).",
    )
    parser.addoption(
        "--update-sancheck-baseline",
        action="store_true",
        default=False,
        help="Rewrite benchmarks/baselines/sancheck_baseline.json with the "
        "throughput measured in this run (use after an intentional change).",
    )
    parser.addoption(
        "--update-shardcheck-baseline",
        action="store_true",
        default=False,
        help="Rewrite benchmarks/baselines/shardcheck_baseline.json with "
        "the throughput measured in this run (use after an intentional "
        "change).",
    )
    parser.addoption(
        "--update-robustness-baseline",
        action="store_true",
        default=False,
        help="Rewrite benchmarks/baselines/robustness_baseline.json with "
        "the recovery metrics measured in this run (use after an "
        "intentional change to the supervisor or channel).",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "batch: batched-drain benchmarks (selected by --batch)"
    )


def pytest_collection_modifyitems(config, items):
    if not config.getoption("--batch"):
        return
    selected = [item for item in items if item.get_closest_marker("batch")]
    deselected = [item for item in items if not item.get_closest_marker("batch")]
    if deselected:
        config.hook.pytest_deselected(items=deselected)
        items[:] = selected


@pytest.fixture
def emit(capsys):
    """Print *text* to the real terminal, bypassing capture."""

    def _emit(text: str = "") -> None:
        with capsys.disabled():
            print(text)

    return _emit


def fmt_row(cells, widths) -> str:
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
