"""Shared helpers for the benchmark harness.

Every benchmark prints the paper-style table it reproduces through the
``emit`` fixture, which bypasses pytest's output capture so the rows appear
in the ``pytest benchmarks/ --benchmark-only`` log (and hence in
``bench_output.txt`` / EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def emit(capsys):
    """Print *text* to the real terminal, bypassing capture."""

    def _emit(text: str = "") -> None:
        with capsys.disabled():
            print(text)

    return _emit


def fmt_row(cells, widths) -> str:
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
