"""Benchmark: sanitizer cost — the full-repo pass must stay inner-loop fast.

``smartsouth sancheck`` runs on every push and is meant to be cheap
enough to run before every commit, so this bench gates its wall time two
ways: an absolute ceiling (the full pass over ``src/repro`` in a few
seconds, CI-runner slack included) and a throughput floor against the
committed baseline (``benchmarks/baselines/sancheck_baseline.json``),
which catches a rule accidentally going quadratic long before the
ceiling would.

After an intentional cost change, regenerate the baseline with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sancheck.py \
        --update-sancheck-baseline
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis.static import build_models, analyze_models, run_sancheck
from repro.analysis.static.doublerun import scenario_digests
from repro.analysis.static.runner import default_scan_root
from repro.net.scenario import GOLDEN_SCENARIOS

from conftest import fmt_row

BASELINE_PATH = Path(__file__).parent / "baselines" / "sancheck_baseline.json"
#: Hard ceiling on one full static pass (absolute, generous for slow CI).
GATE_SECONDS = 10.0
#: Fail if measured files/s drops below this fraction of the baseline.
REGRESSION_TOLERANCE = 0.5
WIDTHS = (26, 10, 12, 12)


def _load_baseline() -> dict:
    return json.loads(BASELINE_PATH.read_text())


def test_full_repo_pass(benchmark, emit, request):
    """One complete sancheck over src/repro: parse, rules, baseline."""
    report = benchmark(run_sancheck)
    assert report.exit_code == 0, report.format_text()
    mean = benchmark.stats.stats.mean if benchmark.stats is not None else 0.0
    rate = report.files / mean if mean else float("inf")

    emit("\n=== bench_sancheck: full static pass over src/repro ===")
    emit(fmt_row(["metric", "files", "mean (s)", "files/s"], WIDTHS))
    emit(fmt_row(
        ["full pass", report.files, f"{mean:.3f}", f"{rate:.0f}"], WIDTHS
    ))

    assert mean < GATE_SECONDS, (
        f"sancheck took {mean:.2f}s — no longer inner-loop fast"
    )
    if request.config.getoption("--update-sancheck-baseline"):
        BASELINE_PATH.write_text(json.dumps(
            {
                "description": (
                    "Committed sanitizer throughput baseline for "
                    "bench_sancheck.py. files_per_second is set well under "
                    "a quiet-machine measurement to absorb runner noise; "
                    "the bench fails below "
                    f"{REGRESSION_TOLERANCE:.0%} of it. Regenerate with: "
                    "PYTHONPATH=src python -m pytest "
                    "benchmarks/bench_sancheck.py --update-sancheck-baseline"
                ),
                "files_per_second": round(rate / 2.0, 1),
            },
            indent=2, sort_keys=True,
        ) + "\n")
        return
    floor = _load_baseline()["files_per_second"] * REGRESSION_TOLERANCE
    assert rate > floor, (
        f"sancheck throughput regressed: {rate:.0f} files/s < floor "
        f"{floor:.0f} (baseline x {REGRESSION_TOLERANCE})"
    )


def test_phase_split(emit):
    """Where the time goes: parsing+model building vs running the rules."""
    root = default_scan_root()
    started = time.perf_counter()
    models = build_models(root)
    parse_s = time.perf_counter() - started
    started = time.perf_counter()
    findings, rules_run = analyze_models(models)
    rules_s = time.perf_counter() - started

    emit("\n=== bench_sancheck: phase split ===")
    emit(fmt_row(["phase", "files", "time (s)", "share"], WIDTHS))
    total = parse_s + rules_s
    for phase, elapsed in (("parse + model", parse_s), ("rules", rules_s)):
        emit(fmt_row(
            [phase, len(models), f"{elapsed:.3f}",
             f"{elapsed / total:.0%}" if total else "-"], WIDTHS,
        ))
    assert len(rules_run) >= 10
    assert total < GATE_SECONDS


def test_single_scenario_digest_cost(benchmark, emit):
    """The double-run gate's unit of work: one scenario, hashed."""
    scenario = GOLDEN_SCENARIOS[0]
    digests = benchmark(lambda: scenario_digests((scenario,)))
    assert len(digests) == 1
    mean = benchmark.stats.stats.mean if benchmark.stats is not None else 0.0
    emit("\n=== bench_sancheck: double-run unit cost ===")
    emit(fmt_row(
        ["one scenario digest", 1, f"{mean:.3f}",
         f"x{2 * len(GOLDEN_SCENARIOS)} per gate"], WIDTHS,
    ))
