"""Experiment T1-conformance: the compiled pipelines ARE the template.

The deep differential checks live in ``tests/test_differential.py``; this
bench (a) re-asserts trace equality on a reference workload, (b) verifies
every compiled switch statically, and (c) measures the execution-speed cost
of going through the full OpenFlow pipeline instead of the interpreter.
"""

from __future__ import annotations

import pytest

from repro.analysis.verify import verify_engine
from repro.core.engine import make_engine
from repro.core.fields import FIELD_GID
from repro.core.services.anycast import PriocastService
from repro.core.services.base import PlainTraversalService
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi

from conftest import fmt_row

TOPO = erdos_renyi(30, 0.15, seed=7)
WIDTHS = (26, 14, 14, 12, 10)


@pytest.mark.parametrize("mode", ["interpreted", "compiled"])
def test_traversal_speed(benchmark, emit, mode):
    def run():
        net = Network(TOPO)
        engine = make_engine(net, PlainTraversalService(), mode)
        result = engine.trigger(0)
        return result.in_band_messages

    messages = benchmark(run)
    emit(f"T1 speed: {mode} full DFS on {TOPO.name}: {messages} messages")
    assert messages == 4 * TOPO.num_edges - 2 * TOPO.num_nodes + 2


@pytest.mark.parametrize("mode", ["interpreted", "compiled"])
def test_install_speed(benchmark, emit, mode):
    """The offline stage: rule compilation is the compiled engine's cost."""

    def install():
        net = Network(TOPO)
        engine = make_engine(net, SnapshotService(), mode)
        engine.install()
        return engine

    benchmark(install)


def test_trace_equality_reference_workload(benchmark, emit):
    def both():
        traces = []
        for mode in ("interpreted", "compiled"):
            net = Network(TOPO)
            engine = make_engine(
                net, PriocastService({1: {25: 9, 12: 5}}), mode
            )
            engine.trigger(0, fields={FIELD_GID: 1})
            traces.append(net.trace.hop_sequence())
        return traces

    traces = benchmark.pedantic(both, rounds=1, iterations=1)
    emit(
        f"\nT1-conformance: priocast on {TOPO.name}: "
        f"{len(traces[0])} hops, traces identical: {traces[0] == traces[1]}"
    )
    assert traces[0] == traces[1]


def test_static_verification_all_services(benchmark, emit):
    from repro.core.services.anycast import AnycastService
    from repro.core.services.blackhole import BlackholeService, BlackholeTtlService
    from repro.core.services.critical import CriticalNodeService

    services = [
        PlainTraversalService(),
        SnapshotService(),
        AnycastService({1: {3}}),
        PriocastService({1: {3: 5}}),
        BlackholeService(),
        BlackholeTtlService(),
        CriticalNodeService(),
    ]

    def verify_all():
        total_errors = 0
        counts = []
        for service in services:
            engine = make_engine(Network(TOPO), service, "compiled")
            reports = verify_engine(engine)
            errors = sum(len(r.errors) for r in reports)
            total_errors += errors
            counts.append((service.name, engine.total_rules(),
                           engine.total_groups(), errors))
        return total_errors, counts

    total_errors, counts = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    emit("\n=== T1-conformance: static verification of compiled pipelines ===")
    emit(fmt_row(["service", "rules", "groups", "errors", ""], WIDTHS))
    for name, rules, groups, errors in counts:
        emit(fmt_row([name, rules, groups, errors, ""], WIDTHS))
    assert total_errors == 0
