"""Experiment F-fastpath: indexed dispatch vs the interpreted entry scan.

Measures packet-step throughput of both switch engines — the interpreted
linear priority scan and the compiled fast path of
:mod:`repro.openflow.fastpath` — over recorded traversal workloads on the
scalability topologies (the mean-degree-6 random graphs of
``bench_scalability``, a dense complete graph, and a star hub whose O(Δ²)
sweep tables are the worst case for linear scan).

The workload is recorded once per topology: a full snapshot traversal runs
on the real simulator and every pipeline arrival ``(node, fields, stack,
in_port)`` is captured by wrapping the installed handlers.  Replaying that
arrival sequence through a fresh switch set — no simulator, no trace —
times nothing but the per-packet pipeline, which is exactly what the fast
path accelerates.

Two gates per experiment:

* **Target**: the fast path must reach the headline >=5x speedup on every
  workload, and the batched drain mode (experiment F-batch below) must
  reach >=2x over the scalar fast path (the ISSUE acceptance bars).
* **Regression**: the measured speedup must stay within 20% of the
  committed baseline (``benchmarks/baselines/fastpath_baseline.json``).
  Speedup is a same-machine ratio, so the gate is stable across runners of
  different absolute speed.

Experiment F-batch measures the batched packet engine: >=10k concurrent
trigger packets — one storm-sized batch at a hub switch — drained through
:meth:`FastPath.process_batch` (chain replay + copy elision) versus the
same packets through scalar :meth:`FastPath.process` calls.  Run only this
experiment with ``--batch``.

After an intentional perf change, regenerate the baseline with::

    PYTHONPATH=src python -m pytest benchmarks/bench_fastpath.py \
        --update-fastpath-baseline
"""

from __future__ import annotations

import json
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.core.compiler import compile_service
from repro.core.engine import make_engine
from repro.core.fields import FIELD_GID, FIELD_SVC
from repro.core.services.anycast import AnycastService
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import complete, erdos_renyi, star
from repro.openflow.packet import LOCAL_PORT, Packet

from conftest import fmt_row

BASELINE_PATH = Path(__file__).parent / "baselines" / "fastpath_baseline.json"
SPEEDUP_TARGET = 5.0
BATCH_SPEEDUP_TARGET = 2.0
#: Concurrent trigger packets per measured batch (the ISSUE floor is 10k).
BATCH_PACKETS = 10_000
REGRESSION_TOLERANCE = 0.8  # fail if speedup < 80% of the baseline
WIDTHS = (16, 10, 12, 12, 10, 10)
BATCH_WIDTHS = (20, 10, 13, 13, 10, 10)

#: (name, topology factory, replay repeats).  Repeats are sized so each
#: engine replays a few thousand arrivals — enough to dominate timer noise
#: without making the bench slow.
WORKLOADS = [
    ("erdos50_deg6", lambda: erdos_renyi(50, 6.0 / 49, seed=5), 8),
    ("complete12", lambda: complete(12), 20),
    ("star16", lambda: star(17), 100),
]


def record_workload(topo, service_factory=SnapshotService, trigger_fields=None):
    """Run one service traversal and capture every pipeline arrival.

    Handlers are wrapped *after* ``engine.install()`` — ``trigger()`` would
    call install itself and rebind the handlers, clobbering the recorders —
    so the trigger packet is injected and run manually.
    """
    if trigger_fields is None:
        trigger_fields = {FIELD_SVC: SnapshotService.service_id}
    net = Network(topo)
    engine = make_engine(net, service_factory(), "compiled")
    engine.install()
    arrivals = []
    for node, switch in engine.switches.items():
        def recorder(packet, in_port, node=node, orig=switch.process):
            arrivals.append(
                (node, dict(packet.fields), list(packet.stack), in_port)
            )
            return orig(packet, in_port)

        net.set_handler(node, recorder)
    net.inject(0, Packet(fields=dict(trigger_fields)), in_port=LOCAL_PORT)
    net.run()
    assert arrivals, "traversal produced no pipeline arrivals"
    return net, arrivals


def _fresh_switches(net, fast: bool):
    switches = {
        node: compile_service(net, node, SnapshotService(), fast_path=fast)
        for node in net.topology.nodes()
    }
    if fast:
        for switch in switches.values():
            switch.warm_fast_path()  # compile outside the timed region
    return switches


def _outputs_signature(outputs):
    """Engine-comparable view of a PacketOut list (packet ids are global
    allocation order, not semantics, so they are excluded)."""
    return [
        (out.port, sorted(out.packet.fields.items()), list(out.packet.stack))
        for out in outputs
    ]


def replay_throughput(net, arrivals, fast: bool, repeat: int) -> float:
    """Replay the arrival sequence *repeat* times; packets per second."""
    switches = _fresh_switches(net, fast)
    batches = [
        [
            (node, Packet(fields=dict(fields), stack=list(stack)), in_port)
            for node, fields, stack, in_port in arrivals
        ]
        for _ in range(repeat)
    ]
    start = time.perf_counter()
    for batch in batches:
        for node, packet, in_port in batch:
            switches[node].process(packet, in_port)
    elapsed = time.perf_counter() - start
    return len(arrivals) * repeat / elapsed


def _load_baseline() -> dict:
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


@pytest.mark.parametrize(
    "name,topo_factory,repeat", WORKLOADS, ids=[w[0] for w in WORKLOADS]
)
def test_fastpath_speedup(benchmark, emit, request, name, topo_factory, repeat):
    net, arrivals = record_workload(topo_factory())

    # Spot-check engine agreement on this workload before timing it (the
    # deep byte-identical checks live in tests/test_fastpath_differential.py).
    slow_switches = _fresh_switches(net, fast=False)
    fast_switches = _fresh_switches(net, fast=True)
    for node, fields, stack, in_port in arrivals:
        slow_out = slow_switches[node].process(
            Packet(fields=dict(fields), stack=list(stack)), in_port
        )
        fast_out = fast_switches[node].process(
            Packet(fields=dict(fields), stack=list(stack)), in_port
        )
        assert _outputs_signature(slow_out) == _outputs_signature(fast_out)

    def measure():
        slow = replay_throughput(net, arrivals, fast=False, repeat=repeat)
        fast = replay_throughput(net, arrivals, fast=True, repeat=repeat)
        return slow, fast

    slow, fast = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = fast / slow

    if name == WORKLOADS[0][0]:
        emit("\n=== F-fastpath: packet-step throughput, interpreted vs compiled ===")
        emit(fmt_row(
            ["workload", "arrivals", "slow pkt/s", "fast pkt/s",
             "speedup", "baseline"], WIDTHS,
        ))
    baseline = _load_baseline()
    base_speedup = baseline["workloads"][name]["speedup"]
    emit(fmt_row(
        [name, len(arrivals), f"{slow:,.0f}", f"{fast:,.0f}",
         f"{speedup:.2f}x", f"{base_speedup:.2f}x"], WIDTHS,
    ))

    if request.config.getoption("--update-fastpath-baseline"):
        baseline["workloads"][name]["speedup"] = round(speedup, 2)
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        return

    # Gate 1: the headline target.
    assert speedup >= SPEEDUP_TARGET, (
        f"{name}: fast path speedup {speedup:.2f}x below the "
        f"{SPEEDUP_TARGET}x target"
    )
    # Gate 2: no >20% regression against the committed baseline.
    floor = base_speedup * REGRESSION_TOLERANCE
    assert speedup >= floor, (
        f"{name}: fast path speedup {speedup:.2f}x regressed more than "
        f"20% below the committed baseline {base_speedup:.2f}x "
        f"(floor {floor:.2f}x) — if intentional, rerun with "
        f"--update-fastpath-baseline"
    )


# --------------------------------------------------------------------- #
# Experiment F-batch: batched drain mode vs scalar fast path            #
# --------------------------------------------------------------------- #

#: (name, topology factory, service factory, trigger fields factory).
#: Each workload records one real traversal, takes the *hottest* arrival
#: shape (the hub's — where a storm's simultaneous triggers pile up) and
#: replays BATCH_PACKETS copies of it as one batch.
BATCH_WORKLOADS = [
    (
        "snapshot_star16_hub",
        lambda: star(17),
        SnapshotService,
        lambda: {FIELD_SVC: SnapshotService.service_id},
    ),
    (
        "snapshot_complete12",
        lambda: complete(12),
        SnapshotService,
        lambda: {FIELD_SVC: SnapshotService.service_id},
    ),
    (
        "anycast_star9_hub",
        lambda: star(10),
        lambda: AnycastService({2: {1, 2}}),
        lambda: {FIELD_SVC: AnycastService.service_id, FIELD_GID: 2},
    ),
]


def _hot_arrival(arrivals):
    """The most frequent recorded arrival shape (the hub switch's)."""
    keyed = Counter(
        (node, tuple(sorted(fields.items())), tuple(map(tuple, stack)), ip)
        for node, fields, stack, ip in arrivals
    )
    (node, fields, stack, in_port), _count = keyed.most_common(1)[0]
    return node, dict(fields), [list(record) for record in stack], in_port


def _batch_items(fields, stack, in_port, count):
    return [
        (
            Packet(fields=dict(fields), stack=[list(r) for r in stack]),
            in_port,
        )
        for _ in range(count)
    ]


def _batch_counters(switch):
    return (
        switch.packets_processed,
        switch.table_misses,
        [
            (table_id, entry.seq, entry.packet_count)
            for table_id, entry in switch.iter_entries()
        ],
        [
            (
                group.group_id,
                group.packet_count,
                group.rr_next,
                [bucket.packet_count for bucket in group.buckets],
            )
            for group in switch.groups.groups()
        ],
    )


@pytest.mark.batch
@pytest.mark.parametrize(
    "name,topo_factory,service_factory,trigger_factory",
    BATCH_WORKLOADS,
    ids=[w[0] for w in BATCH_WORKLOADS],
)
def test_batch_speedup(
    benchmark, emit, request, name, topo_factory, service_factory,
    trigger_factory,
):
    net, arrivals = record_workload(
        topo_factory(), service_factory, trigger_factory()
    )
    node, fields, stack, in_port = _hot_arrival(arrivals)

    def fresh():
        switch = compile_service(net, node, service_factory(), fast_path=True)
        switch.warm_fast_path()
        return switch

    # Spot-check drain-mode agreement on this workload before timing it:
    # identical per-packet outputs and identical counter state (the deep
    # byte-identical checks live in tests/test_batch_differential.py).
    scalar_switch, batch_switch = fresh(), fresh()
    probe = 64
    scalar_out = [
        [
            (out.port, sorted(out.packet.fields.items()), list(out.packet.stack))
            for out in scalar_switch.process(pkt, ip)
        ]
        for pkt, ip in _batch_items(fields, stack, in_port, probe)
    ]
    batch_out = [None] * probe

    def check_deliver(index, outputs):
        batch_out[index] = [
            (port, sorted(pkt.fields.items()), list(pkt.stack))
            for port, pkt in outputs
        ]

    batch_switch.process_batch(
        _batch_items(fields, stack, in_port, probe), check_deliver
    )
    assert scalar_out == batch_out
    assert _batch_counters(scalar_switch) == _batch_counters(batch_switch)

    def drop(index, outputs):
        pass

    def measure():
        switch = fresh()
        items = _batch_items(fields, stack, in_port, BATCH_PACKETS)
        start = time.perf_counter()
        for pkt, ip in items:
            switch.process(pkt, ip)
        scalar_tp = BATCH_PACKETS / (time.perf_counter() - start)

        switch = fresh()
        items = _batch_items(fields, stack, in_port, BATCH_PACKETS)
        start = time.perf_counter()
        switch.process_batch(items, drop)
        batch_tp = BATCH_PACKETS / (time.perf_counter() - start)
        return scalar_tp, batch_tp

    scalar_tp, batch_tp = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = batch_tp / scalar_tp

    if name == BATCH_WORKLOADS[0][0]:
        emit(
            "\n=== F-batch: batched drain vs scalar fast path "
            f"({BATCH_PACKETS:,} concurrent trigger packets) ==="
        )
        emit(fmt_row(
            ["workload", "packets", "scalar pkt/s", "batch pkt/s",
             "speedup", "baseline"], BATCH_WIDTHS,
        ))
    baseline = _load_baseline()
    base_speedup = baseline["batch_workloads"][name]["speedup"]
    emit(fmt_row(
        [name, BATCH_PACKETS, f"{scalar_tp:,.0f}", f"{batch_tp:,.0f}",
         f"{speedup:.2f}x", f"{base_speedup:.2f}x"], BATCH_WIDTHS,
    ))

    if request.config.getoption("--update-fastpath-baseline"):
        baseline["batch_workloads"][name]["speedup"] = round(speedup, 2)
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        return

    # Gate 1: the headline target.
    assert speedup >= BATCH_SPEEDUP_TARGET, (
        f"{name}: batched drain speedup {speedup:.2f}x below the "
        f"{BATCH_SPEEDUP_TARGET}x target"
    )
    # Gate 2: no >20% regression against the committed baseline.
    floor = base_speedup * REGRESSION_TOLERANCE
    assert speedup >= floor, (
        f"{name}: batched drain speedup {speedup:.2f}x regressed more than "
        f"20% below the committed baseline {base_speedup:.2f}x "
        f"(floor {floor:.2f}x) — if intentional, rerun with "
        f"--update-fastpath-baseline"
    )
