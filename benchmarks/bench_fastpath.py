"""Experiment F-fastpath: indexed dispatch vs the interpreted entry scan.

Measures packet-step throughput of both switch engines — the interpreted
linear priority scan and the compiled fast path of
:mod:`repro.openflow.fastpath` — over recorded traversal workloads on the
scalability topologies (the mean-degree-6 random graphs of
``bench_scalability``, a dense complete graph, and a star hub whose O(Δ²)
sweep tables are the worst case for linear scan).

The workload is recorded once per topology: a full snapshot traversal runs
on the real simulator and every pipeline arrival ``(node, fields, stack,
in_port)`` is captured by wrapping the installed handlers.  Replaying that
arrival sequence through a fresh switch set — no simulator, no trace —
times nothing but the per-packet pipeline, which is exactly what the fast
path accelerates.

Two gates:

* **Target**: the fast path must reach the headline >=5x speedup on every
  workload (the ISSUE acceptance bar).
* **Regression**: the measured speedup must stay within 20% of the
  committed baseline (``benchmarks/baselines/fastpath_baseline.json``).
  Speedup is a same-machine ratio, so the gate is stable across runners of
  different absolute speed.

After an intentional perf change, regenerate the baseline with::

    PYTHONPATH=src python -m pytest benchmarks/bench_fastpath.py \
        --update-fastpath-baseline
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core.compiler import compile_service
from repro.core.engine import make_engine
from repro.core.fields import FIELD_SVC
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import complete, erdos_renyi, star
from repro.openflow.packet import LOCAL_PORT, Packet

from conftest import fmt_row

BASELINE_PATH = Path(__file__).parent / "baselines" / "fastpath_baseline.json"
SPEEDUP_TARGET = 5.0
REGRESSION_TOLERANCE = 0.8  # fail if speedup < 80% of the baseline
WIDTHS = (16, 10, 12, 12, 10, 10)

#: (name, topology factory, replay repeats).  Repeats are sized so each
#: engine replays a few thousand arrivals — enough to dominate timer noise
#: without making the bench slow.
WORKLOADS = [
    ("erdos50_deg6", lambda: erdos_renyi(50, 6.0 / 49, seed=5), 8),
    ("complete12", lambda: complete(12), 20),
    ("star16", lambda: star(17), 100),
]


def record_workload(topo):
    """Run one snapshot traversal and capture every pipeline arrival.

    Handlers are wrapped *after* ``engine.install()`` — ``trigger()`` would
    call install itself and rebind the handlers, clobbering the recorders —
    so the trigger packet is injected and run manually.
    """
    net = Network(topo)
    engine = make_engine(net, SnapshotService(), "compiled")
    engine.install()
    arrivals = []
    for node, switch in engine.switches.items():
        def recorder(packet, in_port, node=node, orig=switch.process):
            arrivals.append(
                (node, dict(packet.fields), list(packet.stack), in_port)
            )
            return orig(packet, in_port)

        net.set_handler(node, recorder)
    net.inject(
        0,
        Packet(fields={FIELD_SVC: SnapshotService.service_id}),
        in_port=LOCAL_PORT,
    )
    net.run()
    assert arrivals, "traversal produced no pipeline arrivals"
    return net, arrivals


def _fresh_switches(net, fast: bool):
    switches = {
        node: compile_service(net, node, SnapshotService(), fast_path=fast)
        for node in net.topology.nodes()
    }
    if fast:
        for switch in switches.values():
            switch.warm_fast_path()  # compile outside the timed region
    return switches


def _outputs_signature(outputs):
    """Engine-comparable view of a PacketOut list (packet ids are global
    allocation order, not semantics, so they are excluded)."""
    return [
        (out.port, sorted(out.packet.fields.items()), list(out.packet.stack))
        for out in outputs
    ]


def replay_throughput(net, arrivals, fast: bool, repeat: int) -> float:
    """Replay the arrival sequence *repeat* times; packets per second."""
    switches = _fresh_switches(net, fast)
    batches = [
        [
            (node, Packet(fields=dict(fields), stack=list(stack)), in_port)
            for node, fields, stack, in_port in arrivals
        ]
        for _ in range(repeat)
    ]
    start = time.perf_counter()
    for batch in batches:
        for node, packet, in_port in batch:
            switches[node].process(packet, in_port)
    elapsed = time.perf_counter() - start
    return len(arrivals) * repeat / elapsed


def _load_baseline() -> dict:
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


@pytest.mark.parametrize(
    "name,topo_factory,repeat", WORKLOADS, ids=[w[0] for w in WORKLOADS]
)
def test_fastpath_speedup(benchmark, emit, request, name, topo_factory, repeat):
    net, arrivals = record_workload(topo_factory())

    # Spot-check engine agreement on this workload before timing it (the
    # deep byte-identical checks live in tests/test_fastpath_differential.py).
    slow_switches = _fresh_switches(net, fast=False)
    fast_switches = _fresh_switches(net, fast=True)
    for node, fields, stack, in_port in arrivals:
        slow_out = slow_switches[node].process(
            Packet(fields=dict(fields), stack=list(stack)), in_port
        )
        fast_out = fast_switches[node].process(
            Packet(fields=dict(fields), stack=list(stack)), in_port
        )
        assert _outputs_signature(slow_out) == _outputs_signature(fast_out)

    def measure():
        slow = replay_throughput(net, arrivals, fast=False, repeat=repeat)
        fast = replay_throughput(net, arrivals, fast=True, repeat=repeat)
        return slow, fast

    slow, fast = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = fast / slow

    if name == WORKLOADS[0][0]:
        emit("\n=== F-fastpath: packet-step throughput, interpreted vs compiled ===")
        emit(fmt_row(
            ["workload", "arrivals", "slow pkt/s", "fast pkt/s",
             "speedup", "baseline"], WIDTHS,
        ))
    baseline = _load_baseline()
    base_speedup = baseline["workloads"][name]["speedup"]
    emit(fmt_row(
        [name, len(arrivals), f"{slow:,.0f}", f"{fast:,.0f}",
         f"{speedup:.2f}x", f"{base_speedup:.2f}x"], WIDTHS,
    ))

    if request.config.getoption("--update-fastpath-baseline"):
        baseline["workloads"][name]["speedup"] = round(speedup, 2)
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        return

    # Gate 1: the headline target.
    assert speedup >= SPEEDUP_TARGET, (
        f"{name}: fast path speedup {speedup:.2f}x below the "
        f"{SPEEDUP_TARGET}x target"
    )
    # Gate 2: no >20% regression against the committed baseline.
    floor = base_speedup * REGRESSION_TOLERANCE
    assert speedup >= floor, (
        f"{name}: fast path speedup {speedup:.2f}x regressed more than "
        f"20% below the committed baseline {base_speedup:.2f}x "
        f"(floor {floor:.2f}x) — if intentional, rerun with "
        f"--update-fastpath-baseline"
    )
