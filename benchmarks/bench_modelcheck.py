"""Benchmark: model-checker throughput and wall-time vs failure budget.

The checker's cost is dominated by failure interleavings: with budget *f*
every live edge is a branch point at every step, so the frontier grows
roughly with `E^f` before dedup collapses it.  Two tables make that
concrete: states/second of raw exploration (the stepper + BFS hot path)
and wall-time as the failure budget sweeps 0 → 2 on the paper's example
topologies.  The gate is the PR's acceptance bar — every paper service on
Abilene with a 1-failure budget must check in well under 60 s (we gate an
order of magnitude tighter on the slowest single service).
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.modelcheck import CheckConfig, check_engine
from repro.core.engine import make_engine
from repro.core.services.anycast import PriocastService
from repro.core.services.blackhole import BlackholeService
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import abilene, grid, ring

from conftest import fmt_row

FAILURE_BUDGETS = [0, 1, 2]
WIDTHS = (10, 10, 8, 10, 12, 12)
GATE_SECONDS = 6.0


def _check(topology, service, budget: int):
    engine = make_engine(Network(topology), service, "compiled")
    started = time.perf_counter()
    report = check_engine(engine, CheckConfig(max_failures=budget))
    elapsed = time.perf_counter() - started
    assert report.exit_code == 0, report.format_text(topology)
    return report, elapsed


@pytest.mark.parametrize("budget", FAILURE_BUDGETS)
def test_walltime_vs_failure_budget(benchmark, emit, budget):
    """Snapshot on Abilene: the full-DFS worst case of the sweep."""
    topology = abilene()

    def run():
        engine = make_engine(Network(topology), SnapshotService(), "compiled")
        return check_engine(engine, CheckConfig(max_failures=budget))

    report = benchmark(run)
    assert report.exit_code == 0
    elapsed = (
        benchmark.stats.stats.mean if benchmark.stats is not None else 0.0
    )
    rate = report.states / elapsed if elapsed else float("nan")
    if budget == FAILURE_BUDGETS[0]:
        emit("\n=== bench_modelcheck: snapshot/abilene vs failure budget ===")
        emit(fmt_row(
            ["budget", "states", "scen", "mean s", "states/s", "result"],
            WIDTHS,
        ))
    emit(fmt_row(
        [
            budget,
            report.states,
            report.scenarios,
            f"{elapsed:.3f}",
            f"{rate:,.0f}",
            "clean",
        ],
        WIDTHS,
    ))


def test_states_per_second_table(emit):
    """Exploration throughput across the example topologies (budget 1)."""
    cases = [
        ("snapshot", ring(4), SnapshotService()),
        ("snapshot", grid(3, 3), SnapshotService()),
        ("snapshot", abilene(), SnapshotService()),
        ("priocast", abilene(), PriocastService({1: {3: 10, 7: 20}})),
        ("blackhole", abilene(), BlackholeService()),
    ]
    emit("\n=== bench_modelcheck: states/second (1-failure budget) ===")
    emit(fmt_row(
        ["service", "topology", "scen", "states", "wall s", "states/s"],
        WIDTHS,
    ))
    for name, topology, service in cases:
        report, elapsed = _check(topology, service, 1)
        rate = report.states / elapsed if elapsed else float("nan")
        emit(fmt_row(
            [
                name,
                topology.name,
                report.scenarios,
                report.states,
                f"{elapsed:.3f}",
                f"{rate:,.0f}",
            ],
            WIDTHS,
        ))
        assert report.states > 0


def test_gate_paper_services_on_abilene(emit):
    """The acceptance gate: each paper service on Abilene, 1-failure
    budget, far under the 60 s bar."""
    topology = abilene()
    services = [
        SnapshotService(),
        PriocastService({1: {3: 10, 7: 20}}),
        BlackholeService(),
    ]
    worst = 0.0
    for service in services:
        _report, elapsed = _check(topology, service, 1)
        worst = max(worst, elapsed)
        emit(f"check {service.name} on abilene (budget 1): {elapsed:.3f}s")
    assert worst < GATE_SECONDS, (
        f"slowest service took {worst:.3f}s (gate {GATE_SECONDS}s)"
    )
