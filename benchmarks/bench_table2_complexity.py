"""Experiment T2-*: reproduce the paper's Table 2 (message complexities).

For every service the harness runs the implementation on a family of
topologies, measures the out-of-band and in-band message counts from the
trace, and prints them next to the paper's formulas.  The paper's counts
drop additive constants (it writes ``4|E| − 2n`` where the exact count is
``4E − 2n + 2``); the harness asserts the exact closed forms where the
count is deterministic and the bound otherwise.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import (
    dfs_message_count,
    echo_message_count,
    priocast_message_count,
    ttl_search_probes,
)
from repro.core.runtime import SmartSouthRuntime
from repro.net.simulator import Network
from repro.net.topology import Topology, abilene, erdos_renyi, fat_tree, grid, ring

from conftest import fmt_row

TOPOLOGIES: list[Topology] = [
    ring(16),
    grid(4, 6),
    abilene(),
    fat_tree(4),
    erdos_renyi(30, 0.15, seed=7),
    erdos_renyi(60, 0.08, seed=7),
    erdos_renyi(120, 0.04, seed=7),
]

WIDTHS = (22, 6, 6, 24, 10, 24, 10)
HEADER = fmt_row(
    ["topology", "n", "|E|", "out-band paper/measured", "ok",
     "in-band paper/measured", "ok"],
    WIDTHS,
)


def _ids():
    return [t.name for t in TOPOLOGIES]


@pytest.fixture(scope="module", autouse=True)
def banner(request):
    with request.config.pluginmanager.get_plugin("capturemanager").global_and_fixture_disabled():
        print("\n=== Table 2 reproduction: out-band / in-band messages per service ===")
    yield


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=_ids())
def test_snapshot_row(benchmark, emit, topo):
    n, e = topo.num_nodes, topo.num_edges

    def run():
        runtime = SmartSouthRuntime(Network(topo), mode="compiled")
        return runtime.snapshot(0)

    outcome = benchmark(run)
    expect_in = dfs_message_count(n, e)
    ok_out = outcome.result.out_band_messages == 2
    ok_in = outcome.result.in_band_messages == expect_in
    emit(HEADER) if topo is TOPOLOGIES[0] else None
    emit(fmt_row(
        [f"snapshot/{topo.name}", n, e,
         f"1+1 / {outcome.result.out_band_messages}", ok_out,
         f"4E-2n={expect_in} / {outcome.result.in_band_messages}", ok_in],
        WIDTHS,
    ))
    assert ok_out and ok_in
    assert outcome.links == topo.port_pair_set()


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=_ids())
def test_anycast_row(benchmark, emit, topo):
    n, e = topo.num_nodes, topo.num_edges
    member = n - 1

    def run():
        runtime = SmartSouthRuntime(Network(topo), mode="compiled")
        return runtime.anycast(0, 1, {1: {member}})

    result = benchmark(run)
    bound = dfs_message_count(n, e)
    ok_out = result.out_band_messages == 0
    ok_in = result.in_band_messages <= bound
    emit(fmt_row(
        [f"anycast/{topo.name}", n, e,
         f"0 / {result.out_band_messages}", ok_out,
         f"<=4E-2n={bound} / {result.in_band_messages}", ok_in],
        WIDTHS,
    ))
    assert ok_out and ok_in and result.delivered_at == member


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=_ids())
def test_priocast_row(benchmark, emit, topo):
    n, e = topo.num_nodes, topo.num_edges
    priorities = {n - 1: 30, n // 2: 20, 1: 10}

    def run():
        runtime = SmartSouthRuntime(Network(topo), mode="compiled")
        return runtime.priocast(0, 1, {1: priorities})

    result = benchmark(run)
    bound = priocast_message_count(n, e)
    ok_out = result.out_band_messages == 0
    ok_in = result.in_band_messages <= bound
    emit(fmt_row(
        [f"priocast/{topo.name}", n, e,
         f"0 / {result.out_band_messages}", ok_out,
         f"<=8E-4n={bound} / {result.in_band_messages}", ok_in],
        WIDTHS,
    ))
    assert ok_out and ok_in and result.delivered_at == n - 1


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=_ids())
def test_blackhole_ttl_row(benchmark, emit, topo):
    n, e = topo.num_nodes, topo.num_edges
    victim = e // 2

    def run():
        net = Network(topo)
        net.links[victim].set_blackhole()
        runtime = SmartSouthRuntime(net, mode="compiled")
        return runtime.detect_blackhole_ttl(0)

    verdict = benchmark(run)
    probe_bound = ttl_search_probes(e)
    out_bound = 2 * probe_bound
    in_bound = probe_bound * dfs_message_count(n, e)
    ok_out = verdict.out_band_messages <= out_bound
    ok_in = verdict.in_band_messages <= in_bound
    emit(fmt_row(
        [f"blackhole-ttl/{topo.name}", n, e,
         f"2logE<={out_bound} / {verdict.out_band_messages}", ok_out,
         f"~8E-4n (in) / {verdict.in_band_messages}", ok_in],
        WIDTHS,
    ))
    assert verdict.found and ok_out and ok_in


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=_ids())
def test_blackhole_counters_row(benchmark, emit, topo):
    n, e = topo.num_nodes, topo.num_edges
    victim = e // 3

    def run():
        net = Network(topo)
        net.links[victim].set_blackhole()
        runtime = SmartSouthRuntime(net, mode="compiled")
        return runtime.detect_blackhole_smart(0)

    verdict = benchmark(run)
    in_bound = echo_message_count(n, e) + dfs_message_count(n, e)
    ok_out = verdict.out_band_messages == 3
    ok_in = verdict.in_band_messages <= in_bound
    emit(fmt_row(
        [f"blackhole-cnt/{topo.name}", n, e,
         f"3 / {verdict.out_band_messages}", ok_out,
         f"<=4E(+DFS)={in_bound} / {verdict.in_band_messages}", ok_in],
        WIDTHS,
    ))
    assert verdict.found and ok_out and ok_in


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=_ids())
def test_critical_row(benchmark, emit, topo):
    n, e = topo.num_nodes, topo.num_edges

    def run():
        runtime = SmartSouthRuntime(Network(topo), mode="compiled")
        return runtime.critical(0)

    outcome = benchmark(run)
    bound = dfs_message_count(n, e)
    ok_out = outcome.result.out_band_messages == 2
    ok_in = outcome.result.in_band_messages <= bound
    emit(fmt_row(
        [f"critical/{topo.name}", n, e,
         f"2 / {outcome.result.out_band_messages}", ok_out,
         f"<=4E-2n={bound} / {outcome.result.in_band_messages}", ok_in],
        WIDTHS,
    ))
    assert ok_out and ok_in


def test_chain_extension_row(benchmark, emit):
    """X-chain: service chaining costs one anycast traversal per leg."""
    topo = erdos_renyi(30, 0.15, seed=7)
    groups = {1: {7}, 2: {19}, 3: {28}}

    def run():
        runtime = SmartSouthRuntime(Network(topo), mode="compiled")
        return runtime.service_chain(0, [1, 2, 3], groups)

    outcome = benchmark(run)
    bound = 3 * dfs_message_count(topo.num_nodes, topo.num_edges)
    emit(fmt_row(
        [f"chain-3/{topo.name}", topo.num_nodes, topo.num_edges,
         "0 / 0", outcome.completed,
         f"<=3legs={bound} / {outcome.in_band_messages}",
         outcome.in_band_messages <= bound],
        WIDTHS,
    ))
    assert outcome.completed and outcome.path == [7, 19, 28]
