#!/usr/bin/env python3
"""Scenario: finding a controller in-band after management-plane failures.

The paper's motivating use for priocast (§3.2): "priocast could be useful to
find an alternative in-band path to the controller, if the management port
of the controller cannot be reached", and for distributed control planes,
"a packet must reach a close controller".

Setup: a fat-tree fabric with two controller attachment points (a primary
with high priority and a backup with low priority).  A switch that lost its
management connection needs to reach *some* controller in-band:

1. with everything healthy, priocast delivers to the primary;
2. after link failures cut the primary's region off, the *same* pre-installed
   rules deliver to the backup — zero controller messages, zero recomputation;
3. a controller-driven reactive path (the baseline) dies with the failure
   and needs a repair round trip.

Run:  python examples/inband_controller_recovery.py
"""

from repro import Network, SmartSouthRuntime, generators
from repro.control.apps.reactive_routing import ReactiveAnycastRouting
from repro.control.controller import Controller


def main() -> None:
    topo = generators["fat_tree"](4)
    primary, backup = 0, 3  # two core switches host controller uplinks
    priorities = {1: {primary: 200, backup: 50}}
    stranded = topo.num_nodes - 1  # an edge switch that lost its mgmt port

    print(f"fabric: {topo.name} ({topo.num_nodes} switches, "
          f"{topo.num_edges} links)")
    print(f"controllers: primary at switch {primary} (prio 200), "
          f"backup at switch {backup} (prio 50)")
    print(f"stranded switch: {stranded}\n")

    # Healthy fabric: priocast reaches the primary.
    net = Network(topo)
    runtime = SmartSouthRuntime(net, mode="compiled")
    result = runtime.priocast(stranded, gid=1, priorities=priorities)
    print("healthy fabric:")
    print(f"  priocast delivered to switch {result.delivered_at} "
          f"(primary: {result.delivered_at == primary})")
    print(f"  {result.in_band_messages} in-band messages, "
          f"{result.out_band_messages} controller messages\n")

    # Cut every link of the primary's core switch: its region is gone.
    net2 = Network(topo)
    for port in range(1, topo.degree(primary) + 1):
        edge = topo.port_edge(primary, port)
        net2.links[edge.edge_id].up = False
    runtime2 = SmartSouthRuntime(net2, mode="compiled")
    result2 = runtime2.priocast(stranded, gid=1, priorities=priorities)
    print(f"after isolating the primary ({topo.degree(primary)} links down):")
    print(f"  priocast delivered to switch {result2.delivered_at} "
          f"(backup: {result2.delivered_at == backup})")
    print(f"  {result2.in_band_messages} in-band messages, "
          f"{result2.out_band_messages} controller messages\n")

    # Baseline: a reactive unicast path to the primary dies with the links.
    net3 = Network(topo)
    controller = Controller(net3)
    app = controller.register(ReactiveAnycastRouting({1: {primary, backup}}))
    install = app.install_path(stranded, 1)
    print("baseline (controller-installed shortest path):")
    print(f"  installed path {install.path} "
          f"({install.rule_installs} rule installs)")
    for port in range(1, topo.degree(primary) + 1):
        edge = topo.port_edge(primary, port)
        net3.links[edge.edge_id].up = False
    outcome = app.send(stranded, install)
    print(f"  after the same failures, delivery: {outcome} "
          f"(packet died at a dead port)")
    repaired, messages = app.repair(stranded, 1)
    print(f"  reactive repair reached switch "
          f"{app.send(stranded, repaired) if repaired else None} "
          f"after {messages} extra control messages")
    print("\npriocast needed 0 control messages for the same recovery.")


if __name__ == "__main__":
    main()
