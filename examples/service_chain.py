#!/usr/bin/env python3
"""Scenario: steering traffic through a middlebox chain, in-band.

The paper (§3.2, citing SIMPLE [14]): "Anycasts can easily be chained, in
the sense that sequences of middleboxes can be specified which need to be
traversed."  Here a packet entering a datacenter fabric must pass a
firewall, then a deep-packet-inspection box, then reach a cache replica —
each service deployed as an anycast group with several instances, each leg
resolved in-band with zero controller messages.

We then fail the nearest firewall's links and show the *same* rules steer
the chain through the surviving instance.

Run:  python examples/service_chain.py
"""

from repro import Network, SmartSouthRuntime, generators

FIREWALL, DPI, CACHE = 1, 2, 3


def main() -> None:
    topo = generators["fat_tree"](4)
    groups = {
        FIREWALL: {4, 9},   # two firewall instances on aggregation switches
        DPI: {13, 18},      # two DPI boxes on edge switches
        CACHE: {16, 19},    # two cache replicas
    }
    names = {FIREWALL: "firewall", DPI: "dpi", CACHE: "cache"}
    entry = 12

    print(f"fabric: {topo.name} ({topo.num_nodes} switches)")
    for gid, members in groups.items():
        print(f"  {names[gid]:9} instances at {sorted(members)}")
    print(f"chain: firewall -> dpi -> cache, entering at switch {entry}\n")

    runtime = SmartSouthRuntime(Network(topo), mode="compiled")
    outcome = runtime.service_chain(entry, [FIREWALL, DPI, CACHE], groups)
    print("healthy fabric:")
    print(f"  resolved path: {outcome.path} (completed: {outcome.completed})")
    for gid, (leg, hop) in zip([FIREWALL, DPI, CACHE],
                               zip(outcome.legs, outcome.path)):
        print(f"    {names[gid]:9} leg -> switch {hop}: "
              f"{leg.in_band_messages} in-band msgs")
    print(f"  total: {outcome.in_band_messages} in-band messages, "
          f"0 controller messages\n")

    # Take down the firewall instance the first leg picked.
    picked = outcome.path[0]
    net = Network(topo)
    for port in range(1, topo.degree(picked) + 1):
        edge = topo.port_edge(picked, port)
        net.links[edge.edge_id].up = False
    runtime2 = SmartSouthRuntime(net, mode="compiled")
    rerun = runtime2.service_chain(entry, [FIREWALL, DPI, CACHE], groups)
    other_firewall = (groups[FIREWALL] - {picked}).pop()
    print(f"after isolating firewall instance {picked}:")
    print(f"  resolved path: {rerun.path} (completed: {rerun.completed})")
    print(f"  first leg now uses instance {rerun.path[0]} "
          f"(expected {other_firewall}: {rerun.path[0] == other_firewall})")
    print(f"  still 0 controller messages — fast failover did the rerouting")

    # A broken chain is reported as such, not silently misdelivered.
    net3 = Network(topo)
    for member in groups[DPI]:
        for port in range(1, topo.degree(member) + 1):
            edge = topo.port_edge(member, port)
            net3.links[edge.edge_id].up = False
    runtime3 = SmartSouthRuntime(net3, mode="compiled")
    broken = runtime3.service_chain(entry, [FIREWALL, DPI, CACHE], groups)
    print(f"\nwith every dpi instance isolated:")
    print(f"  chain completed: {broken.completed}; "
          f"progress before breaking: {broken.path}")


if __name__ == "__main__":
    main()
