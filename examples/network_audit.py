#!/usr/bin/env python3
"""Scenario: a pre-maintenance audit, fully in-band.

An operator wants to take switches down for maintenance (or energy
conservation — the paper's §3.4 motivation) but the management network is
partially broken, so controller-driven tooling can't see the whole fabric.
Using only in-band SmartSouth functions through a single reachable switch:

1. snapshot the live topology (case study 1),
2. check every switch for criticality (case study 4),
3. simulate the maintenance: fail the candidate's links, re-snapshot, and
   confirm the fabric stays connected.

Run:  python examples/network_audit.py
"""

from repro import Network, SmartSouthRuntime, generators
from repro.control.apps.topology_service import LldpTopologyService
from repro.control.controller import Controller


def main() -> None:
    topo = generators["waxman"](24, seed=5)
    entry = 0  # the one switch we can still manage

    # The broken baseline first: LLDP with 80% of switches unmanageable.
    net_baseline = Network(topo)
    controller = Controller(net_baseline)
    lldp = controller.register(LldpTopologyService())
    for node in range(5, topo.num_nodes):
        controller.channel.disconnect(node)
    discovered = lldp.discover()
    print(f"fabric: {topo.name} ({topo.num_nodes} switches, "
          f"{topo.num_edges} links)")
    print(f"management plane: only switches 0-4 reachable")
    print(f"LLDP TopologyService sees {len(discovered)}/{topo.num_edges} "
          f"links — not enough to audit\n")

    # In-band snapshot through the single entry switch.
    net = Network(topo)
    runtime = SmartSouthRuntime(net, mode="compiled")
    snap = runtime.snapshot(entry)
    print(f"in-band snapshot via switch {entry}: "
          f"{len(snap.nodes)} nodes, {len(snap.links)} links "
          f"(exact: {snap.links == topo.port_pair_set()})")

    # Criticality scan.
    critical = [u for u in topo.nodes() if runtime.critical(u).critical]
    safe = [u for u in topo.nodes() if u not in critical]
    print(f"critical switches (must stay up): {critical}")
    print(f"safe to take down, one at a time: {len(safe)} switches\n")

    # Dry-run the maintenance of the first safe switch.
    candidate = next(u for u in safe if u != entry)
    net2 = Network(topo)
    for port in range(1, topo.degree(candidate) + 1):
        edge = topo.port_edge(candidate, port)
        net2.links[edge.edge_id].up = False
    runtime2 = SmartSouthRuntime(net2, mode="compiled")
    after = runtime2.snapshot(entry)
    expected_nodes = topo.num_nodes - 1  # everyone but the candidate
    print(f"maintenance dry-run: isolating switch {candidate} "
          f"({topo.degree(candidate)} links)")
    print(f"  post-maintenance snapshot sees {len(after.nodes)} nodes "
          f"(expected {expected_nodes}): "
          f"{'fabric stays connected' if len(after.nodes) == expected_nodes else 'PARTITION!'}")

    # And the negative control: taking down a critical switch partitions.
    if critical:
        bad = critical[0]
        net3 = Network(topo)
        for port in range(1, topo.degree(bad) + 1):
            edge = topo.port_edge(bad, port)
            net3.links[edge.edge_id].up = False
        runtime3 = SmartSouthRuntime(net3, mode="compiled")
        broken = runtime3.snapshot(entry)
        print(f"  negative control, isolating critical switch {bad}: "
              f"snapshot sees only {len(broken.nodes)}/{expected_nodes} nodes "
              f"— partition confirmed")


if __name__ == "__main__":
    main()
