#!/usr/bin/env python3
"""Scenario: hunting a silent failure three ways.

A link in an ISP backbone starts silently dropping every packet (a
"blackhole", [8] in the paper): the ports stay up, fast failover sees
nothing, traffic just vanishes.  This example localizes it with

1. the paper's smart-counter algorithm (2 traversals + 1 report),
2. the paper's TTL binary search (O(log E) probes),
3. the controller-probing baseline (Θ(E) management messages),

and also demonstrates the packet-loss monitor on a link that only drops a
fraction of its traffic.

Run:  python examples/blackhole_hunt.py
"""

import random

from repro import Network, SmartSouthRuntime, generators
from repro.control.apps.probe_blackhole import ProbeBlackholeDetector
from repro.control.controller import Controller


def main() -> None:
    topo = generators["waxman"](26, seed=12)
    rng = random.Random(4)
    victim_id = rng.randrange(topo.num_edges)
    victim = topo.edge(victim_id)
    print(f"network: {topo.name} ({topo.num_nodes} nodes, "
          f"{topo.num_edges} links)")
    print(f"injected blackhole: link ({victim.a.node},{victim.a.port})-"
          f"({victim.b.node},{victim.b.port})\n")

    # 1. Smart counters.
    net = Network(topo)
    net.links[victim_id].set_blackhole()
    runtime = SmartSouthRuntime(net, mode="compiled")
    smart = runtime.detect_blackhole_smart(0)
    print("smart counters (paper §3.3, second algorithm)")
    print(f"  located: {smart.location} -> {smart.far_end}")
    print(f"  out-of-band: {smart.out_band_messages} messages, "
          f"in-band: {smart.in_band_messages}\n")

    # 2. TTL binary search.
    net2 = Network(topo)
    net2.links[victim_id].set_blackhole()
    runtime2 = SmartSouthRuntime(net2, mode="compiled")
    ttl = runtime2.detect_blackhole_ttl(0)
    print("TTL binary search (paper §3.3, first algorithm)")
    print(f"  located: {ttl.location} -> {ttl.far_end} "
          f"after {ttl.probes} probes")
    print(f"  out-of-band: {ttl.out_band_messages} messages, "
          f"in-band: {ttl.in_band_messages}\n")

    # 3. Controller probing baseline.
    net3 = Network(topo)
    net3.links[victim_id].set_blackhole()
    controller = Controller(net3)
    detector = controller.register(ProbeBlackholeDetector())
    probe = detector.check()
    print("controller probing baseline")
    print(f"  silent directions: {sorted(probe.silent)}")
    print(f"  out-of-band: {probe.out_band_messages} messages "
          f"({probe.probes_sent} probes)\n")

    # 4. Lossy (partial) blackhole: the packet-loss monitor.
    net4 = Network(topo, seed=1)
    lossy_id = (victim_id + 3) % topo.num_edges
    net4.links[lossy_id].set_loss(0.3)
    runtime4 = SmartSouthRuntime(net4)
    monitor = runtime4.loss_monitor((5, 7))
    monitor.send_traffic(packets_per_direction=17)
    for link in net4.links:
        link.clear()
    report = monitor.check(0)
    lossy = topo.edge(lossy_id)
    print("packet-loss monitor (paper §3.3 extension, prime moduli 5 and 7)")
    print(f"  lossy link: ({lossy.a.node},{lossy.a.port})-"
          f"({lossy.b.node},{lossy.b.port}) at 30% drop rate")
    print(f"  flagged receiver-side ports: {sorted(report.flagged)}")
    print(f"  matches counter-visible ground truth: "
          f"{report.flagged == monitor.detectable_losses()}")


if __name__ == "__main__":
    main()
