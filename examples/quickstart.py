#!/usr/bin/env python3
"""Quickstart: install SmartSouth on a WAN and use all four services.

Builds the Abilene backbone, compiles the SmartSouth rule sets onto
simulated OpenFlow 1.3 switches, and runs each of the paper's case studies
once: a topology snapshot, an anycast delivery, a blackhole hunt and a
critical-node check.

Run:  python examples/quickstart.py
"""

from repro import Network, SmartSouthRuntime, generators


def main() -> None:
    topo = generators["abilene"]()
    net = Network(topo)
    runtime = SmartSouthRuntime(net, mode="compiled")

    print(f"network: {topo.name} with {topo.num_nodes} switches, "
          f"{topo.num_edges} links\n")

    # 1. Snapshot: collect the live topology in-band from one switch.
    snap = runtime.snapshot(root=0)
    print("snapshot (case study 1)")
    print(f"  discovered {len(snap.nodes)} nodes and {len(snap.links)} links")
    print(f"  exact reconstruction: {snap.links == topo.port_pair_set()}")
    print(f"  cost: {snap.result.in_band_messages} in-band, "
          f"{snap.result.out_band_messages} out-of-band messages\n")

    # 2. Anycast: reach any replica of a service, no controller involved.
    replicas = {4, 9}
    result = runtime.anycast(root=0, gid=1, groups={1: replicas})
    print("anycast (case study 2)")
    print(f"  request from switch 0 to replicas {sorted(replicas)}: "
          f"delivered at switch {result.delivered_at}")
    print(f"  cost: {result.in_band_messages} in-band, "
          f"{result.out_band_messages} out-of-band messages\n")

    # 3. Blackhole detection: inject a silent failure, find it with three
    # out-of-band messages using smart counters.
    victim = topo.edge(7)
    net.links[7].set_blackhole()
    verdict = runtime.detect_blackhole_smart(root=0)
    print("blackhole detection (case study 3)")
    print(f"  injected silent drop on link "
          f"({victim.a.node},{victim.a.port})-({victim.b.node},{victim.b.port})")
    print(f"  detected at {verdict.location}, far end {verdict.far_end}")
    print(f"  cost: {verdict.out_band_messages} out-of-band messages "
          f"(the paper's 3)\n")
    net.links[7].clear()

    # 4. Critical node: which switches can NOT be taken down for maintenance?
    critical = [u for u in topo.nodes() if runtime.critical(u).critical]
    print("critical-node detection (case study 4)")
    print(f"  critical switches of {topo.name}: {critical or 'none'}")


if __name__ == "__main__":
    main()
