#!/usr/bin/env python3
"""Tutorial companion: a custom SmartSouth service, end to end.

Implements **node counting** ("how many switches are alive in my
component?") as a new in-band function, the way docs/TUTORIAL.md builds it
up:

* each node that is *visited for the first time* decrements a budget field
  carried by the packet (OpenFlow's ``dec_ttl`` applied to a scratch
  header field — no new primitives needed);
* the root's Finish reports the packet to the controller, which computes
  ``alive = initial_budget - remaining`` .

Both halves are shown: the interpreter hooks (Table 1 style) and the
compiled code generator, registered with the compiler so the service runs
on real flow rules.

Run:  python examples/custom_service.py
"""

from repro import Network, generators, make_engine
from repro.core.compiler import ServiceCodegen, register_codegen
from repro.core.services.base import HookContext, Service
from repro.openflow.actions import Action, DecTtl
from repro.openflow.packet import CONTROLLER_PORT

#: The packet field carrying the countdown.
FIELD_BUDGET = "count_budget"
#: Large enough for any network we ask about (fits 8 bits).
INITIAL_BUDGET = 255


class NodeCountService(Service):
    """Count the switches reachable from the trigger point, in-band."""

    name = "nodecount"
    service_id = 11

    # -- interpreter hooks (the reference semantics) ----------------------

    def _spend(self, ctx: HookContext) -> None:
        budget = ctx.packet.get(FIELD_BUDGET)
        ctx.packet.set(FIELD_BUDGET, max(0, budget - 1))

    def on_trigger(self, ctx: HookContext) -> None:
        self._spend(ctx)  # the root counts itself

    def first_visit(self, ctx: HookContext) -> None:
        self._spend(ctx)  # each node counts exactly once

    def finish(self, ctx: HookContext) -> None:
        ctx.out = CONTROLLER_PORT


class NodeCountCodegen(ServiceCodegen):
    """The same hooks as flow-rule actions: one dec_ttl per first visit."""

    def trigger_actions(self) -> list[Action]:
        return [DecTtl(FIELD_BUDGET)]

    def first_visit_actions(self, in_port: int) -> list[Action]:
        return [DecTtl(FIELD_BUDGET)]

    # finish_variants: the default (report to the controller) is right.


register_codegen(NodeCountService, NodeCountCodegen)


def count_nodes(network: Network, root: int, mode: str = "compiled") -> int | None:
    """Trigger a count from *root*; returns the number of live switches."""
    engine = make_engine(network, NodeCountService(), mode)
    result = engine.trigger(root, fields={FIELD_BUDGET: INITIAL_BUDGET})
    if not result.reports:
        return None
    _node, packet = result.reports[-1]
    return INITIAL_BUDGET - packet.get(FIELD_BUDGET)


def main() -> None:
    topo = generators["erdos_renyi"](23, 0.2, seed=3)
    print(f"network: {topo.name} with {topo.num_nodes} switches")

    for mode in ("interpreted", "compiled"):
        count = count_nodes(Network(topo), 0, mode)
        print(f"  {mode:12} engine counts {count} switches")

    # Partition the network and count again: only the component answers.
    net = Network(topo)
    victim = 5
    for port in range(1, topo.degree(victim) + 1):
        net.links[topo.port_edge(victim, port).edge_id].up = False
    count = count_nodes(net, 0)
    print(f"  after isolating switch {victim}: {count} switches "
          f"(expected {topo.num_nodes - 1})")


if __name__ == "__main__":
    main()
