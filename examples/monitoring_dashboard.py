#!/usr/bin/env python3
"""Scenario: a fully in-band monitoring round, no controller required.

Combines the extensions into one operational loop over a jellyfish-style
fabric whose services are all co-installed on a single multi-service
pipeline per switch (dispatched by the packet's ``svc`` field):

1. chunked topology snapshot (bounded packet sizes, §3.1 remark),
2. per-link load heatmap from prime-modulus smart counters (§4 remark),
3. packet-loss check across every link (§3.3 extension),
4. criticality scan with verdicts delivered to a local server
   (§3.5 in-band reporting remark).

Run:  python examples/monitoring_dashboard.py
"""

import random

from repro import (
    MultiServiceEngine,
    Network,
    SmartSouthRuntime,
    generators,
)
from repro.core.services import (
    BlackholeService,
    CriticalNodeService,
    PlainTraversalService,
    SnapshotService,
)


def main() -> None:
    topo = generators["random_regular"](18, 4, seed=9)
    print(f"fabric: {topo.name} ({topo.num_nodes} switches, "
          f"{topo.num_edges} links)\n")

    # One compiled multi-service pipeline per switch hosts everything.
    net = Network(topo, seed=3)
    stack = [
        PlainTraversalService(),
        SnapshotService(),
        BlackholeService(),
        CriticalNodeService(inband_report=True),
    ]
    fabric = MultiServiceEngine(net, stack, mode="compiled")
    fabric.install()
    rules = fabric.total_rules()
    print(f"multi-service pipeline installed: {rules} rules total "
          f"({rules // topo.num_nodes} per switch on average)\n")

    # --- 1. chunked snapshot ------------------------------------------- #
    runtime = SmartSouthRuntime(Network(topo), mode="compiled")
    nodes, links, stats = runtime.snapshot_chunked(0, max_records=12)
    print("[1] chunked snapshot (<= 12 records per packet)")
    print(f"    {len(nodes)} nodes, {len(links)} links in {stats['chunks']} "
          f"chunks; exact: {links == topo.port_pair_set()}\n")

    # --- 2. load heatmap ------------------------------------------------ #
    load_net = Network(topo, seed=3)
    load_runtime = SmartSouthRuntime(load_net)
    load_monitor = load_runtime.load_monitor((5, 7, 11))
    rng = random.Random(1)
    offered = {
        (edge.a.node, edge.a.port): rng.randrange(0, 350)
        for edge in topo.edges()
    }
    load_monitor.send_traffic(offered)
    report = load_monitor.audit(0)
    hottest = sorted(report.loads.items(), key=lambda kv: -kv[1])[:3]
    print("[2] load heatmap (smart counters mod 5/7/11, CRT up to "
          f"{report.modulus_product - 1})")
    print(f"    exact: {report.loads == load_monitor.ground_truth()}")
    for (node, port), load in hottest:
        far = topo.neighbor(node, port)
        print(f"    hot link: {far.node} -> {node} carried {load} packets")
    print()

    # --- 3. packet-loss check ------------------------------------------- #
    loss_net = Network(topo, seed=5)
    loss_runtime = SmartSouthRuntime(loss_net)
    monitor = loss_runtime.loss_monitor((5, 7))
    degraded = rng.randrange(topo.num_edges)
    loss_net.links[degraded].set_loss(0.4)
    monitor.send_traffic(9)
    loss_net.links[degraded].clear()
    loss_report = monitor.check(0)
    bad_edge = topo.edge(degraded)
    print("[3] packet-loss check (counters mod 5 and 7)")
    print(f"    degraded link: ({bad_edge.a.node},{bad_edge.a.port})-"
          f"({bad_edge.b.node},{bad_edge.b.port}) at 40% loss")
    print(f"    flagged: {sorted(loss_report.flagged)}")
    print(f"    matches ground truth: "
          f"{loss_report.flagged == monitor.detectable_losses()}\n")

    # --- 4. in-band criticality scan ------------------------------------ #
    out_band = 0
    critical = []
    for node in topo.nodes():
        result = fabric.trigger(
            CriticalNodeService.service_id, node, from_controller=False
        )
        out_band += result.out_band_messages
        if result.deliveries and result.deliveries[0][1].get("crit") == 1:
            critical.append(node)
    print("[4] criticality scan, verdicts to local servers")
    print(f"    critical switches: {critical or 'none'} "
          f"(4-regular fabrics have none)")
    print(f"    management messages used: {out_band} (complete in-band "
          f"monitoring, as the paper's §3.5 remark promises)")


if __name__ == "__main__":
    main()
